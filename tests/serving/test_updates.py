"""Edge updates through the serving stack: correctness and scoped caches.

Three layers under test:

* ``QueryService.update_edges`` — post-update answers must equal cold
  runs against a from-scratch rebuild of the updated graph, on both
  backends, for core and truss cohesion alike;
* the *scope* of invalidation — results and engine-pool state for
  degree constraints the delta provably left alone must survive, truss
  numbers must be evicted per affected component only;
* the ``POST /update-edges`` endpoint and ``repro update-edges`` CLI —
  including every documented error path (malformed lists, self-loops,
  duplicates, deleting a nonexistent edge, inserting an existing one).
"""

from __future__ import annotations

import http.client
import json

import numpy as np
import pytest

from repro.cli import main
from repro.graphs.builder import graph_from_edges
from repro.influential.api import top_r_communities
from repro.serving import (
    InfluentialQuery,
    QueryService,
    ServingApp,
    load_service,
    run_server_in_thread,
    save_snapshot,
)
from repro.truss.decomposition import truss_decomposition


def _request(base_url, method, path, payload=None):
    host = base_url.removeprefix("http://")
    connection = http.client.HTTPConnection(host, timeout=60)
    try:
        body = None if payload is None else json.dumps(payload)
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def post(base_url, path, payload):
    return _request(base_url, "POST", path, payload)


def rebuild(graph):
    """A cold from-scratch twin of ``graph`` (shares no caches)."""
    edges = [
        (u, v) for u in range(graph.n) for v in graph.adjacency[u] if u < v
    ]
    return graph_from_edges(edges, weights=graph.weights, n=graph.n)


def clique_plus_path():
    """K6 on 0..5 (core 5) plus the disjoint path 6-7-8-9 (core 1)."""
    edges = [(u, v) for u in range(6) for v in range(u + 1, 6)]
    edges += [(6, 7), (7, 8), (8, 9)]
    return graph_from_edges(edges, weights=np.arange(1.0, 11.0), n=10)


QUERIES = [
    InfluentialQuery(k=2, r=2, f="sum"),
    InfluentialQuery(k=3, r=3, f="avg", eps=0.0),
    InfluentialQuery(k=2, r=2, f="min"),
    InfluentialQuery(k=4, r=1, f="sum-surplus(1)"),
    InfluentialQuery(k=2, r=2, f="sum", cohesion="truss"),
]


# ----------------------------------------------------------------------
# Served answers == cold rebuilds
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["set", "csr"])
def test_update_edges_matches_cold_rebuild(backend):
    service = QueryService(clique_plus_path(), backend=backend)
    for query in QUERIES:
        service.submit(query)
    report = service.update_edges(insert=[(6, 8), (0, 6)], delete=[(1, 2)])
    assert report.delta.edges_applied == 3
    cold_graph = rebuild(service.graph)
    cold_service = QueryService(cold_graph, backend=backend)
    for query in QUERIES:
        served = service.submit(query)
        cold = cold_service.submit(query)
        assert served == cold
        assert served.values() == cold.values()
    assert np.array_equal(
        service.core_numbers, cold_service.core_numbers
    )


def test_update_edges_then_update_weights_compose(figure1):
    service = QueryService(figure1)
    query = InfluentialQuery(k=2, r=3, f="sum")
    service.submit(query)
    service.update_edges(insert=[(0, 9)])
    new_weights = np.arange(1.0, figure1.n + 1.0)
    service.update_weights(new_weights)
    cold = top_r_communities(
        rebuild(service.graph), **query.solver_kwargs()
    )
    assert service.submit(query) == cold


def test_rejected_update_changes_nothing(figure1):
    service = QueryService(figure1)
    query = InfluentialQuery(k=2, r=2, f="sum")
    service.submit(query)
    before = service.graph
    with pytest.raises(Exception, match="self-loop"):
        service.update_edges(insert=[(3, 3)])
    assert service.graph is before
    assert service.peek(query) is not None
    assert service.edge_updates == 0


# ----------------------------------------------------------------------
# Invalidation scope
# ----------------------------------------------------------------------
def test_results_survive_for_unaffected_degree_constraints():
    service = QueryService(clique_plus_path())
    low = InfluentialQuery(k=1, r=2, f="sum")
    high = InfluentialQuery(k=4, r=2, f="sum")
    low_result, high_result = service.submit(low), service.submit(high)
    report = service.update_edges(insert=[(6, 8)])  # path-side, kbar == 2
    assert report.delta.max_affected_core == 2
    assert service.peek(low) is None  # affected level: dropped
    assert service.peek(high) is high_result  # untouched level: kept
    solver_calls = service.solver_calls
    assert service.submit(high) == high_result
    assert service.solver_calls == solver_calls  # answered from cache
    assert service.submit(low) is not low_result


def test_hub_attachment_keeps_the_bound_low():
    # Attaching a low-core vertex to a member of the K6 clique must not
    # invalidate the clique's levels: the inserted edge is induced in
    # k-cores only up to its *smaller* endpoint's core number, so the
    # bound is min-based, not max-based.
    service = QueryService(clique_plus_path())
    high = InfluentialQuery(k=4, r=2, f="sum")
    high_result = service.submit(high)
    report = service.update_edges(insert=[(0, 6)])  # hub 0 (core 5) ← 6 (core 1)
    assert report.delta.cores_changed == 0
    assert report.delta.max_affected_core == 1
    assert service.peek(high) is high_result


def test_engine_pool_state_survives_above_the_bound():
    service = QueryService(clique_plus_path())
    # backend="csr" explicitly: only the CSR expansion engine populates
    # the pool, and this test must hold under the set-backend CI matrix.
    service.submit(InfluentialQuery(k=1, r=2, f="sum", backend="csr"))
    service.submit(InfluentialQuery(k=4, r=2, f="sum", backend="csr"))
    pool = service.engine_pool
    assert {1, 4} <= set(pool._per_k)
    kept_state = pool._per_k[4]
    service.update_edges(insert=[(6, 8)])
    assert 1 not in pool._per_k  # k <= kbar: dropped, rebuilt lazily
    assert pool._per_k[4] is kept_state  # k > kbar: survives verbatim
    assert pool.kmax == 5


def test_truss_cache_evicted_per_component_and_lazily_refreshed():
    # Two disjoint components: a triangle and a 4-cycle.  A chord in the
    # cycle must evict (and later refresh) only the cycle's entries.
    graph = graph_from_edges(
        [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (5, 6), (3, 6)],
        weights=[1.0] * 7,
    )
    service = QueryService(graph)
    full = dict(service.truss_numbers)
    triangle_edges = {(0, 1), (0, 2), (1, 2)}
    report = service.update_edges(insert=[(3, 5)])
    assert report.truss_entries_dropped == 4  # the cycle's edges only
    assert set(service._truss_numbers) == triangle_edges
    assert service._truss_pending is not None
    refreshed = service.truss_numbers  # lazy per-component recompute
    assert service._truss_pending is None
    assert refreshed == truss_decomposition(rebuild(service.graph))
    for edge in triangle_edges:
        assert refreshed[edge] == full[edge]


def test_truss_results_always_dropped(figure1):
    service = QueryService(figure1)
    query = InfluentialQuery(k=2, r=2, f="sum", cohesion="truss")
    service.submit(query)
    service.update_edges(insert=[(0, 9)])
    assert service.peek(query) is None


def test_worker_payload_never_ships_a_stale_truss_cache(figure1):
    service = QueryService(figure1)
    service.truss_numbers  # noqa: B018 — warm the cache, then poke it
    service.update_edges(insert=[(0, 9)])
    # While the per-component refresh is pending, the payload ships no
    # truss cache at all (it must neither be stale nor trigger a truss
    # peel — the HTTP front end builds payloads on the event loop).
    assert service._worker_payload()["truss_numbers"] is None
    refreshed = service.truss_numbers  # resolve the pending components
    assert service._worker_payload()["truss_numbers"] == refreshed
    assert refreshed == truss_decomposition(rebuild(service.graph))


def test_snapshot_after_deltas_round_trips(tmp_path, figure1):
    service = QueryService(figure1)
    service.truss_numbers  # noqa: B018 — persist a truss cache too
    service.update_edges(insert=[(0, 9)], delete=[(0, 1)])
    save_snapshot(service, tmp_path / "snap")
    restored = load_service(tmp_path / "snap")
    assert restored.graph.m == service.graph.m
    for query in QUERIES:
        assert restored.submit(query) == service.submit(query)
    assert np.array_equal(restored.core_numbers, service.core_numbers)
    assert restored.truss_numbers == service.truss_numbers


# ----------------------------------------------------------------------
# HTTP endpoint
# ----------------------------------------------------------------------
@pytest.fixture
def served(figure1):
    service = QueryService(figure1)
    app = ServingApp(service)
    with run_server_in_thread(app) as base_url:
        yield service, app, base_url


def test_update_edges_over_http_matches_cold(served):
    service, app, base_url = served
    status, body = post(
        base_url, "/update-edges", {"insert": [[0, 9]], "delete": [[0, 1]]}
    )
    assert status == 200
    assert body["status"] == "updated"
    assert body["inserted"] == 1 and body["deleted"] == 1
    assert body["epoch"] == app._epoch == 1
    status, answer = post(base_url, "/query", {"k": 2, "r": 3, "f": "sum"})
    assert status == 200
    cold = top_r_communities(rebuild(service.graph), k=2, r=3, f="sum")
    assert answer["communities"] == [sorted(c.vertices) for c in cold]
    assert answer["values"] == cold.values()


@pytest.mark.parametrize(
    "payload, fragment",
    [
        (None, "at least one"),
        ({}, "at least one"),
        ({"weights": [1]}, "at least one"),
        ({"insert": [[0, 9]], "extra": 1}, "unknown edge-update field"),
        ({"insert": 123}, "JSON array"),
        ({"insert": [[0, 9]], "delete": {"0": 9}}, "JSON array"),
        ({"insert": [], "delete": []}, "empty"),
        ({"insert": [[1, 1]]}, "self-loop"),
        ({"insert": [[0, 9], [9, 0]]}, "more than once"),
        ({"insert": [[0, 1, 2]]}, "pair"),
        ({"insert": ["xy"]}, "integers"),
        ({"insert": [[0, 99]]}, "not in graph"),
        ({"insert": [[0, 1]]}, "already exists"),
        ({"delete": [[0, 9]]}, "does not exist"),
        ({"insert": [[0, 9]], "delete": [[0, 9]]}, "both insert and delete"),
    ],
)
def test_update_edges_http_error_paths(served, payload, fragment):
    service, app, base_url = served
    status, body = post(base_url, "/update-edges", payload)
    assert status == 400
    assert fragment in body["error"]["detail"]
    # A rejected batch costs nothing: no epoch bump, no graph change.
    assert app._epoch == 0
    assert service.graph.m == 16
    assert service.edge_updates == 0


def test_update_edges_http_preserves_unaffected_cache_entries():
    graph = clique_plus_path()
    service = QueryService(graph)
    app = ServingApp(service)
    with run_server_in_thread(app) as base_url:
        high = {"k": 4, "r": 2, "f": "sum"}
        post(base_url, "/query", high)
        solver_calls = service.solver_calls
        status, body = post(base_url, "/update-edges", {"insert": [[6, 8]]})
        assert status == 200 and body["max_affected_core"] == 2
        status, __ = post(base_url, "/query", high)
        assert status == 200
        assert service.solver_calls == solver_calls  # cache hit survived


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_updates_a_running_server(served, capsys):
    service, __, base_url = served
    exit_code = main(
        ["update-edges", "--url", base_url, "--insert", "0,9"]
    )
    assert exit_code == 0
    body = json.loads(capsys.readouterr().out)
    assert body["status"] == "updated" and body["m"] == 17
    assert service.graph.has_edge(0, 9)


def test_cli_reports_server_rejections(served, capsys):
    __, __, base_url = served
    exit_code = main(
        ["update-edges", "--url", base_url, "--delete", "0,9"]
    )
    assert exit_code == 2
    assert "does not exist" in capsys.readouterr().err


def test_cli_unreachable_server(capsys):
    exit_code = main(
        ["update-edges", "--url", "http://127.0.0.1:9", "--insert", "0,1"]
    )
    assert exit_code == 2
    assert "cannot reach" in capsys.readouterr().err


def test_cli_patches_a_snapshot(tmp_path, figure1, capsys):
    snap = tmp_path / "snap"
    save_snapshot(QueryService(figure1), snap)
    edits = tmp_path / "edits.json"
    edits.write_text(json.dumps({"insert": [[0, 9]], "delete": [[0, 1]]}))
    exit_code = main(["update-edges", "--snapshot", str(snap), "--edits", str(edits)])
    assert exit_code == 0
    restored = load_service(snap)
    assert restored.graph.has_edge(0, 9)
    assert not restored.graph.has_edge(0, 1)
    query = InfluentialQuery(k=2, r=3, f="sum")
    assert restored.submit(query) == top_r_communities(
        rebuild(restored.graph), **query.solver_kwargs()
    )


def test_cli_snapshot_out_leaves_source_untouched(tmp_path, figure1):
    source, patched = tmp_path / "src", tmp_path / "patched"
    save_snapshot(QueryService(figure1), source)
    exit_code = main(
        [
            "update-edges", "--snapshot", str(source),
            "--insert", "0,9", "--out", str(patched),
        ]
    )
    assert exit_code == 0
    assert not load_service(source).graph.has_edge(0, 9)
    assert load_service(patched).graph.has_edge(0, 9)


@pytest.mark.parametrize(
    "argv, fragment",
    [
        (["--insert", "1;2"], "comma-separated"),
        (["--insert", "1,2,3"], "comma-separated"),
        (["--insert", "a,b"], "non-integer"),
        ([], "nothing to apply"),
        (["--insert", "3,3"], "self-loop"),
        (["--delete", "0,9"], "does not exist"),
    ],
)
def test_cli_error_paths_exit_2(tmp_path, figure1, argv, fragment, capsys):
    snap = tmp_path / "snap"
    save_snapshot(QueryService(figure1), snap)
    exit_code = main(["update-edges", "--snapshot", str(snap)] + argv)
    assert exit_code == 2
    assert fragment in capsys.readouterr().err


def test_cli_rejects_out_with_url(capsys):
    exit_code = main(
        [
            "update-edges", "--url", "http://127.0.0.1:9",
            "--insert", "0,1", "--out", "somewhere/",
        ]
    )
    assert exit_code == 2
    assert "--out only applies to --snapshot" in capsys.readouterr().err


def test_cli_rejects_malformed_edits_file(tmp_path, figure1, capsys):
    snap = tmp_path / "snap"
    save_snapshot(QueryService(figure1), snap)
    edits = tmp_path / "edits.json"
    edits.write_text("[1, 2]")
    exit_code = main(
        ["update-edges", "--snapshot", str(snap), "--edits", str(edits)]
    )
    assert exit_code == 2
    assert "must be" in capsys.readouterr().err
