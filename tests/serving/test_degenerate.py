"""Degenerate queries return well-formed empty results — never crash.

The serving satellite of ISSUE 3: r beyond the community family, k above
the max core number, k >= |V|, and empty/singleton graphs must produce
empty (or truncated) :class:`~repro.influential.results.ResultSet`
objects through both the direct API and the service.  Malformed *specs*
(k or r below 1, s that can never hold a k-core, oversized s on a real
graph) keep raising.
"""

import pytest

from repro.errors import SpecError
from repro.graphs.builder import GraphBuilder, graph_from_edges
from repro.influential.api import top_r_communities
from repro.influential.results import ResultSet
from repro.influential.spec import ProblemSpec
from repro.serving import InfluentialQuery, QueryService


@pytest.fixture
def singleton():
    builder = GraphBuilder(1)
    builder.set_weight(0, 5.0)
    return builder.build()


@pytest.fixture
def edge_pair():
    return graph_from_edges([(0, 1)], weights=[2.0, 3.0])


AGGS = ("sum", "avg", "min", "max")


class TestDirectAPI:
    def test_empty_graph_returns_empty(self, empty_graph):
        for f in AGGS:
            result = top_r_communities(empty_graph, k=1, r=3, f=f)
            assert isinstance(result, ResultSet) and len(result) == 0

    def test_singleton_graph_returns_empty(self, singleton):
        for f in AGGS:
            assert len(top_r_communities(singleton, k=1, r=2, f=f)) == 0

    def test_k_at_least_n_returns_empty(self, edge_pair, figure1):
        assert len(top_r_communities(edge_pair, k=2, r=1)) == 0
        assert len(top_r_communities(figure1, k=11, r=1)) == 0
        assert len(top_r_communities(figure1, k=99, r=1, f="min")) == 0

    def test_k_at_least_n_short_circuits_every_method(self, edge_pair):
        for method in ("auto", "naive", "improved", "local", "bruteforce"):
            assert len(
                top_r_communities(edge_pair, k=5, r=2, method=method)
            ) == 0

    def test_k_above_max_core_returns_empty(self, tiny):
        # kmax(tiny) = 3 and |V| = 7: k = 5 exercises the solver path
        # (not the k >= n short circuit).
        assert len(top_r_communities(tiny, k=5, r=3)) == 0

    def test_r_beyond_family_is_truncated_not_padded(self, two_triangles):
        result = top_r_communities(two_triangles, k=2, r=99, f="sum")
        assert 1 <= len(result) <= 4
        assert result.rth_value(99) == float("-inf")

    def test_malformed_specs_still_raise(self, figure1, empty_graph):
        with pytest.raises(SpecError):
            top_r_communities(figure1, k=0, r=1)
        with pytest.raises(SpecError):
            top_r_communities(figure1, k=2, r=0)
        with pytest.raises(SpecError):
            top_r_communities(figure1, k=2, r=1, s=100)
        with pytest.raises(SpecError):
            top_r_communities(empty_graph, k=2, r=1, s=1)  # s < k + 1

    def test_infeasible_for_classification(self, figure1, empty_graph):
        assert ProblemSpec.create(11, 1, "sum").infeasible_for(figure1)
        assert ProblemSpec.create(1, 1, "sum").infeasible_for(empty_graph)
        assert not ProblemSpec.create(2, 1, "sum").infeasible_for(figure1)
        # validate_for keeps its strict contract for direct spec users.
        with pytest.raises(SpecError):
            ProblemSpec.create(11, 1, "sum").validate_for(figure1)


class TestService:
    def test_empty_graph_service(self, empty_graph):
        service = QueryService(empty_graph)
        assert service.kmax == 0
        for f in AGGS:
            result = service.submit(InfluentialQuery(k=3, r=2, f=f))
            assert isinstance(result, ResultSet) and len(result) == 0

    def test_singleton_service(self, singleton):
        service = QueryService(singleton)
        assert len(service.submit(InfluentialQuery(k=1, r=1))) == 0

    def test_degenerate_matches_cold_api(self, tiny):
        service = QueryService(tiny)
        for query in (
            InfluentialQuery(k=5, r=3),          # kmax < k < n
            InfluentialQuery(k=7, r=3),          # k == n
            InfluentialQuery(k=12, r=3, f="max"),
            InfluentialQuery(k=2, r=50, f="min"),
        ):
            assert service.submit(query) == top_r_communities(
                tiny, **query.solver_kwargs()
            )

    def test_service_spec_errors_mirror_cold(self, tiny):
        service = QueryService(tiny)
        with pytest.raises(SpecError):
            service.submit(InfluentialQuery(k=0, r=1))
        with pytest.raises(SpecError):
            service.submit(InfluentialQuery(k=2, r=1, s=50))

    def test_degenerate_batch_with_workers(self, tiny):
        service = QueryService(tiny)
        batch = [
            InfluentialQuery(k=9, r=2),
            InfluentialQuery(k=2, r=99),
            InfluentialQuery(k=9, r=2),
        ]
        sharded = service.submit_many(batch, workers=2)
        assert sharded == [
            top_r_communities(tiny, **q.solver_kwargs()) for q in batch
        ]

    def test_empty_graph_truss_service(self, empty_graph):
        service = QueryService(empty_graph)
        assert service.tmax == 0
        assert len(service.submit(
            InfluentialQuery(k=3, r=1, cohesion="truss")
        )) == 0
