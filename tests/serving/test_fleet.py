"""The serving fleet: shared substrate, replication, and shutdown.

These tests fork real member processes (via :class:`repro.serving.fleet
.Fleet`) and talk to them over real sockets.  Proxy mode is used where a
test must aim requests at a *specific* member (reuseport routing is the
kernel's choice); a reuseport smoke test runs where the platform has it.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import signal
import socket
import time

import pytest

from repro.serving.fleet import Fleet, attach_replication
from repro.serving.http import ServingApp
from repro.serving.replog import ReplicationLog
from repro.serving.service import QueryService
from repro.serving.substrate import SEGMENT_PREFIX

QUERY = {"k": 2, "r": 2, "f": "sum"}


def _request(port: int, method: str, path: str, payload=None, timeout=30):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _shm_segments() -> set[str]:
    try:
        return {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(SEGMENT_PREFIX)
        }
    except FileNotFoundError:  # pragma: no cover — non-Linux
        return set()


def _wait_member_seq(port: int, seq: int, timeout: float = 20.0) -> dict:
    deadline = time.monotonic() + timeout
    status: dict = {}
    while time.monotonic() < deadline:
        _code, body = _request(port, "GET", "/healthz")
        status = body.get("replication") or {}
        if status.get("applied_seq", -1) >= seq and status.get("lag") == 0:
            return body
        time.sleep(0.05)
    raise AssertionError(
        f"member :{port} never reached seq {seq}: {status}"
    )


@pytest.fixture
def proxy_fleet(figure1, tmp_path):
    fleet = Fleet(
        QueryService(figure1),
        members=2,
        mode="proxy",
        log_path=tmp_path / "repl.log",
    )
    fleet.start()
    try:
        yield fleet
    finally:
        fleet.stop()


def test_fleet_members_answer_identically(proxy_fleet):
    answers = {
        json.dumps(_request(port, "POST", "/query", QUERY)[1], sort_keys=True)
        for port in proxy_fleet.member_ports
    }
    assert len(answers) == 1
    # And through the proxy itself.
    status, body = _request(proxy_fleet.port, "POST", "/query", QUERY)
    assert status == 200
    assert json.dumps(body, sort_keys=True) in answers


def test_mutation_replicates_to_every_member(proxy_fleet):
    target, other = proxy_fleet.member_ports
    status, update = _request(
        target, "POST", "/update-edges", {"insert": [[0, 7]]}
    )
    assert status == 200
    assert update["status"] == "updated"
    assert update["seq"] == 1
    _wait_member_seq(other, 1)
    post = {
        json.dumps(_request(port, "POST", "/query", QUERY)[1], sort_keys=True)
        for port in proxy_fleet.member_ports
    }
    assert len(post) == 1


def test_kill_a_replica_siblings_keep_serving(proxy_fleet):
    victim = proxy_fleet.processes[0]
    os.kill(victim.pid, signal.SIGKILL)
    victim.join(timeout=10)
    # The proxy skips the dead backend; every request still answers.
    for _ in range(4):
        status, body = _request(proxy_fleet.port, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
    status, _body = _request(proxy_fleet.port, "POST", "/query", QUERY)
    assert status == 200


def test_sigterm_member_drains_and_exits_clean(proxy_fleet):
    member = proxy_fleet.processes[1]
    port = proxy_fleet.member_ports[1]
    # Park an idle keep-alive connection on the member: drain must close
    # it rather than wait forever (3.12+ wait_closed semantics).
    idle = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    idle.request("GET", "/healthz")
    idle.getresponse().read()
    try:
        os.kill(member.pid, signal.SIGTERM)
        member.join(timeout=20)
        assert member.exitcode == 0
    finally:
        idle.close()


def test_healthz_carries_fleet_fields(proxy_fleet):
    for index, port in enumerate(proxy_fleet.member_ports):
        _status, body = _request(port, "GET", "/healthz")
        assert body["member"] == index
        assert body["replication_lag"] == 0
        assert body["rss_bytes"] > 0
        assert body["epoch"] == 0
        _status, stats = _request(port, "GET", "/stats")
        assert stats["replication"]["applied_seq"] == 0
        assert stats["rss_bytes"] > 0


def test_no_shm_leak_after_stop(figure1, tmp_path):
    before = _shm_segments()
    fleet = Fleet(
        QueryService(figure1),
        members=2,
        mode="proxy",
        log_path=tmp_path / "repl.log",
    )
    fleet.start()
    assert _shm_segments() - before  # the substrate is live
    fleet.stop()
    assert _shm_segments() - before == set()


@pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"), reason="no SO_REUSEPORT here"
)
def test_reuseport_mode_shares_one_port(figure1, tmp_path):
    fleet = Fleet(
        QueryService(figure1),
        members=2,
        mode="reuseport",
        log_path=tmp_path / "repl.log",
    )
    fleet.start()
    try:
        assert len(set(fleet.member_ports)) == 1
        assert fleet.member_ports[0] == fleet.port
        seen = set()
        for _ in range(8):
            status, body = _request(fleet.port, "GET", "/healthz")
            assert status == 200
            seen.add(body["member"])
        assert seen  # at least one member answered; kernel picks which
    finally:
        fleet.stop()


def test_follower_replays_through_app_paths(figure1, tmp_path):
    """A standby's Replicator replays foreign records deterministically."""
    log = ReplicationLog(tmp_path / "repl.log")
    log.append("update-edges", {"insert": [[0, 7]]})
    log.append("update-weights", {"weights": [2.0] * figure1.n})
    log.append("update-edges", {"insert": [[0, 7]]})  # conflict: dup insert

    leader = QueryService(figure1)
    leader.update_edges(insert=[(0, 7)])
    leader.update_weights([2.0] * figure1.n)
    expected = leader.submit(QUERY)

    follower = ServingApp(QueryService(figure1))
    replicator = attach_replication(follower, tmp_path / "repl.log")

    async def _catch_up():
        async with follower._update_lock:
            await replicator._sync_locked()

    asyncio.run(_catch_up())
    assert replicator.applied_seq == 3
    assert replicator.apply_failures == 1  # the duplicate insert, skipped
    mirrored = follower.service.submit(QUERY)
    assert mirrored.values() == expected.values()
    assert [sorted(c.vertices) for c in mirrored] == [
        sorted(c.vertices) for c in expected
    ]
    follower.shutdown_executors()


def test_publish_conflict_keeps_interleaved_foreign_record(figure1, tmp_path):
    """A 409 on the caller's own record must not drop a sibling's record
    consumed in the same poll batch — the cursor can never re-read it,
    so bailing out mid-batch would leave this replica diverged forever."""
    from repro.serving.http import _HTTPError

    app = ServingApp(QueryService(figure1))
    replicator = attach_replication(app, tmp_path / "repl.log")
    sibling = ReplicationLog(tmp_path / "repl.log")
    own_append = replicator.log.append

    def _append_then_lose_the_race(op, payload):
        record = own_append(op, payload)
        # A sibling lands a valid mutation after our append and before
        # our poll, so one poll batch holds both records.
        sibling.append("update-weights", {"weights": [3.0] * figure1.n})
        return record

    replicator.log.append = _append_then_lose_the_race
    with pytest.raises(_HTTPError) as excinfo:
        # Edge (0, 1) already exists in figure1 → replay rejects it,
        # deterministically, on every replica.
        asyncio.run(replicator.publish("update-edges", {"insert": [[0, 1]]}))
    assert excinfo.value.status == 409
    assert replicator.apply_failures == 1
    assert replicator.applied_seq == 2  # the sibling's record was applied
    assert list(app.service.graph.weights) == [3.0] * figure1.n
    assert replicator.status()["lag"] == 0
    app.shutdown_executors()


def test_fleet_requires_log_and_members():
    from repro.serving.fleet import FleetError

    with pytest.raises(FleetError):
        Fleet(None, members=0, log_path="x")
    with pytest.raises(FleetError):
        Fleet(None, members=1, log_path=None)
    with pytest.raises(FleetError):
        Fleet(None, members=1, log_path="x", mode="carrier-pigeon")
