"""Golden oracle layer: every solver pinned to brute force, served or not.

The grid runs every registered aggregator family over the fixed
small-graph menagerie on both backends, through
:func:`repro.serving.oracle.oracle_discrepancies` (solver vs exhaustive
reference) and :func:`repro.serving.oracle.service_discrepancies`
(served vs cold).  The truss extension — which the k-core brute forcer
cannot oracle — is pinned against hand-derived truss components.
"""

import pytest

from repro.graphs.generators.examples import barbell_graph
from repro.influential.truss_search import truss_top_r_sum
from repro.serving import InfluentialQuery, QueryService
from repro.serving.oracle import (
    ORACLE_AGGREGATORS,
    oracle_discrepancies,
    service_discrepancies,
    small_oracle_graphs,
)

GRAPHS = dict(small_oracle_graphs())


@pytest.mark.parametrize("backend", ["set", "csr"])
@pytest.mark.parametrize("f", ORACLE_AGGREGATORS)
@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_solvers_match_bruteforce(name, f, backend):
    graph = GRAPHS[name]
    problems = []
    for k in (2, 3):
        problems += oracle_discrepancies(graph, k, 3, f, backend)
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize("backend", ["set", "csr"])
@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_service_matches_cold_queries(name, backend):
    graph = GRAPHS[name]
    workload = [
        InfluentialQuery(k=k, r=r, f=f)
        for k in (1, 2, 3)
        for r in (1, 3)
        for f in ORACLE_AGGREGATORS
    ] + [
        InfluentialQuery(k=2, r=2, f="sum", eps=0.3),
        InfluentialQuery(k=2, r=2, f="sum", method="naive"),
        InfluentialQuery(k=2, r=2, f="avg", method="local"),
        InfluentialQuery(k=2, r=2, f="min", non_overlapping=True),
        InfluentialQuery(k=2, r=2, f="sum", s=5, method="local"),
        InfluentialQuery(k=99, r=2, f="sum"),
    ]
    problems = service_discrepancies(graph, workload, backend=backend)
    assert not problems, "\n".join(problems)


def test_service_matches_cold_through_worker_processes():
    graph = GRAPHS["barbell"]
    workload = [
        InfluentialQuery(k=k, r=2, f=f)
        for k in (2, 3)
        for f in ("sum", "min", "max")
    ]
    problems = service_discrepancies(graph, workload, workers=2)
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize("backend", ["set", "csr"])
def test_truss_golden_barbell(backend):
    # Two K4s bridged by a path: every K4 edge closes 2 triangles (each K4
    # is a 4-truss); the bridge edges close none.  Right clique outweighs
    # the left (weights ascend with vertex id).
    graph = barbell_graph(clique=4, path=2)
    result = truss_top_r_sum(graph, 4, 5, "sum", backend=backend)
    assert result.vertex_sets() == [
        frozenset({6, 7, 8, 9}),
        frozenset({0, 1, 2, 3}),
    ]
    assert result.values() == [7.0 + 8 + 9 + 10, 1.0 + 2 + 3 + 4]
    # k above the trussness of the cliques: nothing qualifies.
    assert len(truss_top_r_sum(graph, 5, 5, "sum", backend=backend)) == 0


def test_truss_service_byte_identical_to_direct():
    graph = barbell_graph(clique=4, path=2)
    service = QueryService(graph)
    for k in (2, 3, 4, 5):
        query = InfluentialQuery(k=k, r=5, f="sum", cohesion="truss")
        direct = truss_top_r_sum(graph, k, 5, "sum")
        assert service.submit(query) == direct
        assert service.submit(query).values() == direct.values()
