"""Snapshot round-trips: save → load preserves everything, recomputes nothing.

Three layers of guarantees:

* **fidelity** — topology, weights, labels and the cached core/truss
  decompositions survive a save/load cycle bit for bit, on both graph
  backends, and a loaded service answers queries identically to a cold
  one;
* **no re-peel** — a loaded service never calls ``core_decomposition`` or
  ``truss_decomposition`` again (asserted with call-count probes), which
  is the whole point of persisting;
* **corruption** — every partial/torn/garbled snapshot shape raises
  :class:`~repro.errors.SnapshotError` instead of serving bad data (the
  manifest is written last, so an interrupted save has no manifest).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import SnapshotError, SolverError
from repro.graphs.builder import GraphBuilder
from repro.graphs.generators.random_graphs import gnm_random_graph
from repro.influential.api import top_r_communities, top_r_many
from repro.serving.query import InfluentialQuery
from repro.serving.service import QueryService
from repro.serving.store import (
    SNAPSHOT_VERSION,
    load_service,
    load_snapshot,
    save_snapshot,
)
from repro.utils.rng import make_rng


@pytest.fixture
def labelled_graph():
    """A small random graph with non-trivial weights and labels."""
    graph = gnm_random_graph(60, 180, seed=11)
    graph = graph.with_weights(make_rng(12).uniform(0.5, 9.5, graph.n))
    return graph.with_labels([f"node-{i:03d}" for i in range(graph.n)])


@pytest.fixture
def saved(labelled_graph, tmp_path):
    """A service with core *and* truss caches warm, saved to disk."""
    service = QueryService(labelled_graph)
    service.truss_numbers  # noqa: B018 — warm so the snapshot carries it
    path = save_snapshot(service, tmp_path / "snap")
    return service, path


# ----------------------------------------------------------------------
# Fidelity
# ----------------------------------------------------------------------
def test_snapshot_arrays_match_source(saved):
    service, path = saved
    snapshot = load_snapshot(path)
    csr = service.graph.csr
    assert snapshot.n == service.graph.n
    assert snapshot.m == service.graph.m
    np.testing.assert_array_equal(np.asarray(snapshot.indptr), csr.indptr)
    np.testing.assert_array_equal(np.asarray(snapshot.indices), csr.indices)
    np.testing.assert_array_equal(
        np.asarray(snapshot.weights), service.graph.weights
    )
    np.testing.assert_array_equal(
        np.asarray(snapshot.core_numbers), service.core_numbers
    )
    assert snapshot.labels == service.graph.labels
    assert snapshot.truss_numbers == service.truss_numbers
    assert snapshot.manifest["kmax"] == service.kmax


@pytest.mark.parametrize("backend", ["set", "csr"])
@pytest.mark.parametrize("mmap", [True, False])
def test_loaded_service_answers_identically(saved, backend, mmap):
    service, path = saved
    loaded = load_service(path, mmap=mmap, backend=backend)
    graph = loaded.graph
    assert sorted(graph.edges()) == sorted(service.graph.edges())
    np.testing.assert_array_equal(graph.weights, service.graph.weights)
    assert graph.labels == service.graph.labels
    queries = [
        InfluentialQuery(k=2, r=3, f="sum"),
        InfluentialQuery(k=3, r=2, f="sum", eps=0.1),
        InfluentialQuery(k=2, r=2, f="min"),
        InfluentialQuery(k=2, r=2, f="avg", s=8),
        InfluentialQuery(k=3, r=2, f="sum", cohesion="truss"),
        InfluentialQuery(k=10_000, r=1, f="sum"),  # far above kmax
    ]
    for query in queries:
        produced = loaded.submit(query)
        expected = service.submit(query)
        assert produced == expected
        assert produced.values() == expected.values()


def test_loaded_service_matches_cold_api(saved):
    service, path = saved
    loaded = load_service(path)
    cold = top_r_communities(service.graph, k=3, r=4, f="sum")
    assert loaded.submit(InfluentialQuery(k=3, r=4, f="sum")) == cold


def test_top_r_many_accepts_snapshot(saved):
    service, path = saved
    queries = [{"k": 2, "r": 2, "f": "sum"}, {"k": 3, "r": 1, "f": "sum"}]
    via_snapshot = top_r_many(None, queries, snapshot=path)
    via_service = top_r_many(None, queries, service=QueryService(service.graph))
    assert via_snapshot == via_service
    with pytest.raises(SolverError):
        top_r_many(service.graph, queries, snapshot=path)
    with pytest.raises(SolverError):
        top_r_many(None, queries)


def test_roundtrip_without_labels_or_truss(tmp_path):
    graph = gnm_random_graph(30, 90, seed=3).with_weights(
        make_rng(4).uniform(1.0, 5.0, 30)
    )
    service = QueryService(graph)
    path = save_snapshot(service, tmp_path / "plain")
    snapshot = load_snapshot(path)
    assert snapshot.labels is None
    assert snapshot.truss_numbers is None
    loaded = load_service(path)
    query = InfluentialQuery(k=2, r=2, f="sum")
    assert loaded.submit(query) == service.submit(query)


def test_empty_graph_roundtrip(tmp_path):
    service = QueryService(GraphBuilder(0).build())
    path = save_snapshot(service, tmp_path / "empty")
    loaded = load_service(path)
    assert loaded.graph.n == 0
    assert loaded.kmax == 0
    assert len(loaded.submit(InfluentialQuery(k=2, r=1, f="sum"))) == 0


def test_include_truss_forces_computation(labelled_graph, tmp_path):
    service = QueryService(labelled_graph)  # truss cache cold
    path = save_snapshot(service, tmp_path / "forced", include_truss=True)
    assert load_snapshot(path).truss_numbers == service.truss_numbers
    omitted = save_snapshot(service, tmp_path / "omitted", include_truss=False)
    assert load_snapshot(omitted).truss_numbers is None
    with pytest.raises(SnapshotError):
        save_snapshot(service, tmp_path / "bad", include_truss="maybe")


def test_refresh_snapshot_in_place_from_its_own_mmap(saved):
    """The ROADMAP refresh flow: load a snapshot, reweight, save back to
    the same directory — the mmapped source arrays must survive the
    overwrite (regression: in-place np.save truncated the file the
    service's own memmap was reading, destroying the snapshot)."""
    service, path = saved
    loaded = load_service(path)  # mmap-backed (the default)
    new_weights = np.linspace(1.0, 2.0, loaded.graph.n)
    loaded.update_weights(new_weights)
    save_snapshot(loaded, path)  # refresh the directory it is mapped from
    refreshed = load_service(path)
    np.testing.assert_array_equal(refreshed.graph.weights, new_weights)
    assert sorted(refreshed.graph.edges()) == sorted(service.graph.edges())
    np.testing.assert_array_equal(
        refreshed.core_numbers, service.core_numbers
    )
    assert refreshed.truss_numbers == service.truss_numbers
    query = InfluentialQuery(k=2, r=2, f="sum")
    assert refreshed.submit(query) == loaded.submit(query)


def test_save_overwrites_previous_snapshot(saved, tmp_path):
    service, path = saved
    again = save_snapshot(service, path)
    assert again == path
    assert load_service(again).submit(
        InfluentialQuery(k=2, r=1, f="sum")
    ) == service.submit(InfluentialQuery(k=2, r=1, f="sum"))


def test_save_skips_replication_seq_regression(figure1, tmp_path):
    """Racing refreshers must not roll the snapshot back: a save whose
    ``replication_seq`` is not newer than the one on disk is a no-op
    (replay is deterministic, so equal seq means identical state)."""
    path = tmp_path / "snap"
    ahead = QueryService(figure1)
    ahead.update_weights([5.0] * figure1.n)
    save_snapshot(ahead, path, replication_seq=5)

    behind = QueryService(figure1)  # a laggard replica's older state
    for stale_seq in (3, 5):
        save_snapshot(behind, path, replication_seq=stale_seq)
        kept = load_snapshot(path)
        assert kept.replication_seq == 5
        np.testing.assert_array_equal(kept.weights, [5.0] * figure1.n)

    newer = QueryService(figure1)
    newer.update_weights([7.0] * figure1.n)
    save_snapshot(newer, path, replication_seq=6)
    advanced = load_snapshot(path)
    assert advanced.replication_seq == 6
    np.testing.assert_array_equal(advanced.weights, [7.0] * figure1.n)


# ----------------------------------------------------------------------
# No re-peel: the call-count probes
# ----------------------------------------------------------------------
def test_load_service_never_repeels_cores(saved, monkeypatch):
    __, path = saved
    calls = {"count": 0}
    import repro.serving.engine_pool as engine_pool

    original = engine_pool.core_decomposition

    def probe(*args, **kwargs):
        calls["count"] += 1
        return original(*args, **kwargs)

    monkeypatch.setattr(engine_pool, "core_decomposition", probe)
    loaded = load_service(path)
    loaded.submit(InfluentialQuery(k=2, r=2, f="sum"))
    loaded.submit(InfluentialQuery(k=3, r=1, f="sum", eps=0.1))
    assert calls["count"] == 0, "loaded service re-ran the core decomposition"


def test_load_service_never_repeels_truss(saved, monkeypatch):
    __, path = saved
    import repro.truss.decomposition as truss_module

    def explode(*args, **kwargs):  # pragma: no cover — must never run
        raise AssertionError("loaded service re-ran the truss decomposition")

    monkeypatch.setattr(truss_module, "truss_decomposition", explode)
    loaded = load_service(path)
    result = loaded.submit(InfluentialQuery(k=3, r=2, f="sum", cohesion="truss"))
    assert loaded.tmax >= 2
    assert result is not None


def test_cold_service_does_peel(labelled_graph, monkeypatch):
    """Control for the probes: without a snapshot the peel *does* run."""
    calls = {"count": 0}
    import repro.serving.engine_pool as engine_pool

    original = engine_pool.core_decomposition

    def probe(*args, **kwargs):
        calls["count"] += 1
        return original(*args, **kwargs)

    monkeypatch.setattr(engine_pool, "core_decomposition", probe)
    QueryService(labelled_graph)
    assert calls["count"] == 1


def test_worker_payload_ships_decompositions(saved):
    """Process-pool workers inherit the caches instead of re-peeling."""
    service, __ = saved
    payload = service._worker_payload()
    np.testing.assert_array_equal(
        payload["core_numbers"], service.core_numbers
    )
    assert payload["truss_numbers"] == service.truss_numbers


# ----------------------------------------------------------------------
# Corrupt / partial snapshots
# ----------------------------------------------------------------------
def test_load_missing_directory(tmp_path):
    with pytest.raises(SnapshotError, match="not a directory"):
        load_snapshot(tmp_path / "never-saved")


def test_load_plain_file(tmp_path):
    file = tmp_path / "file.npy"
    file.write_bytes(b"not a directory")
    with pytest.raises(SnapshotError, match="not a directory"):
        load_snapshot(file)


def test_interrupted_save_has_no_manifest(saved):
    __, path = saved
    (path / "manifest.json").unlink()
    with pytest.raises(SnapshotError, match="manifest"):
        load_snapshot(path)


def test_garbled_manifest(saved):
    __, path = saved
    (path / "manifest.json").write_text("{not json", encoding="utf-8")
    with pytest.raises(SnapshotError, match="garbled"):
        load_snapshot(path)


def test_foreign_manifest(saved):
    __, path = saved
    (path / "manifest.json").write_text(
        json.dumps({"format": "something-else", "version": 1})
    )
    with pytest.raises(SnapshotError, match="manifest"):
        load_snapshot(path)


def test_unsupported_version(saved):
    __, path = saved
    manifest = json.loads((path / "manifest.json").read_text())
    manifest["version"] = SNAPSHOT_VERSION + 1
    (path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(SnapshotError, match="version"):
        load_snapshot(path)


@pytest.mark.parametrize(
    "missing", ["indptr", "indices", "weights", "core_numbers", "truss_edges"]
)
def test_missing_array_file(saved, missing):
    __, path = saved
    (path / f"{missing}.npy").unlink()
    with pytest.raises(SnapshotError, match="missing"):
        load_snapshot(path)


def test_truncated_array_file(saved):
    __, path = saved
    file = path / "indices.npy"
    raw = file.read_bytes()
    file.write_bytes(raw[: len(raw) // 2])
    with pytest.raises(SnapshotError):
        load_snapshot(path)


def test_manifest_count_mismatch(saved):
    __, path = saved
    manifest = json.loads((path / "manifest.json").read_text())
    manifest["n"] += 1
    (path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(SnapshotError, match="length"):
        load_snapshot(path)


def test_missing_labels_file(saved):
    __, path = saved
    (path / "labels.json").unlink()
    with pytest.raises(SnapshotError, match="labels"):
        load_snapshot(path)


def test_garbled_labels_file(saved):
    __, path = saved
    (path / "labels.json").write_text("[truncated", encoding="utf-8")
    with pytest.raises(SnapshotError, match="labels"):
        load_snapshot(path)


def test_torn_truss_arrays(saved):
    __, path = saved
    values = np.load(path / "truss_values.npy")
    np.save(path / "truss_values.npy", values[:-1])
    with pytest.raises(SnapshotError, match="truss"):
        load_snapshot(path)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_snapshot_cli_save_then_load(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "cli-snap"
    assert main(["snapshot", "save", "--dataset", "email", "--out", str(out)]) == 0
    assert main(["snapshot", "load", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "no decompositions recomputed" in printed
    assert "repro-graph-snapshot" in printed


def test_snapshot_cli_dataset_weights_override(tmp_path):
    """--weights must override a stand-in dataset's baked-in weights
    (regression: it was silently ignored whenever --dataset was used)."""
    from repro.cli import main

    snapshot = load_snapshot  # imported at module top
    weights_file = tmp_path / "w.txt"
    out = tmp_path / "weighted-snap"
    # email has 1200 vertices; weight everything 2.5
    weights_file.write_text(
        "\n".join(f"{i} 2.5" for i in range(1200)) + "\n"
    )
    assert main([
        "snapshot", "save", "--dataset", "email",
        "--weights", str(weights_file), "--out", str(out),
    ]) == 0
    loaded = snapshot(out)
    assert np.asarray(loaded.weights).min() == 2.5
    assert np.asarray(loaded.weights).max() == 2.5


def test_snapshot_cli_load_rejects_corrupt(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "cli-bad"
    assert main(["snapshot", "save", "--dataset", "email", "--out", str(out)]) == 0
    (out / "weights.npy").unlink()
    assert main(["snapshot", "load", str(out)]) == 2
    assert "error:" in capsys.readouterr().err
