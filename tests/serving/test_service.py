"""QueryService behaviour: caching, invalidation, pooling, sharding."""

import pytest

from repro.errors import SolverError
from repro.graphs.generators.random_graphs import gnm_random_graph
from repro.influential.api import top_r_communities, top_r_many
from repro.influential.truss_search import truss_top_r_min, truss_top_r_sum
from repro.serving import InfluentialQuery, QueryService
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def served_graph():
    graph = gnm_random_graph(300, 1800, seed=17)
    return graph.with_weights(make_rng(18).uniform(0.1, 30.0, graph.n))


MIXED_WORKLOAD = [
    InfluentialQuery(k=2, r=3, f="sum"),
    InfluentialQuery(k=3, r=1, f="sum", eps=0.1),
    InfluentialQuery(k=3, r=2, f="sum-surplus(1)"),
    InfluentialQuery(k=2, r=2, f="min"),
    InfluentialQuery(k=2, r=2, f="max"),
    InfluentialQuery(k=4, r=3, f="sum", method="naive"),
    InfluentialQuery(k=40, r=2, f="sum"),  # above kmax: served empty
]


def test_submit_matches_cold_api(served_graph):
    service = QueryService(served_graph)
    for query in MIXED_WORKLOAD:
        expected = top_r_communities(served_graph, **query.solver_kwargs())
        assert service.submit(query) == expected
        assert service.submit(query).values() == expected.values()


def test_repeat_submissions_hit_the_cache(served_graph):
    service = QueryService(served_graph)
    query = InfluentialQuery(k=3, r=2, f="sum")
    first = service.submit(query)
    solves = service.solver_calls
    assert service.submit(query) is first  # the cached object itself
    assert service.solver_calls == solves
    stats = service.stats()
    assert stats["result_cache"]["hits"] == 1


def test_equivalent_spellings_share_one_cache_entry(served_graph):
    service = QueryService(served_graph)
    service.submit(InfluentialQuery(k=3, r=2, f="sum-surplus(1)"))
    from repro.aggregators.summation import SumSurplus

    service.submit(InfluentialQuery(k=3, r=2, f=SumSurplus(1.0)))
    assert service.solver_calls == 1


def test_submit_many_preserves_order_and_dedupes(served_graph):
    service = QueryService(served_graph)
    batch = MIXED_WORKLOAD + MIXED_WORKLOAD
    results = service.submit_many(batch)
    assert len(results) == len(batch)
    assert service.solver_calls == len(MIXED_WORKLOAD)
    for query, result in zip(batch, results):
        assert result == top_r_communities(
            served_graph, **query.solver_kwargs()
        )


def test_submit_many_with_workers_matches_sequential(served_graph):
    sequential = QueryService(served_graph).submit_many(MIXED_WORKLOAD)
    service = QueryService(served_graph)
    sharded = service.submit_many(MIXED_WORKLOAD, workers=2)
    assert sharded == sequential
    # Computed results landed in the parent's cache for later submits.
    solves = service.solver_calls
    service.submit_many(MIXED_WORKLOAD)
    assert service.solver_calls == solves


def test_kmax_fast_path_and_core_cache(served_graph):
    service = QueryService(served_graph)
    assert service.kmax >= 2
    empty = service.submit(InfluentialQuery(k=service.kmax + 1, r=3))
    assert len(empty) == 0
    assert empty == top_r_communities(
        served_graph, k=service.kmax + 1, r=3, f="sum"
    )
    assert (service.core_numbers >= 0).all()


def test_update_weights_invalidates_results_and_reuses_topology(served_graph):
    service = QueryService(served_graph)
    query = InfluentialQuery(k=3, r=3, f="sum")
    before = service.submit(query)
    new_weights = make_rng(99).uniform(0.1, 30.0, served_graph.n)
    service.update_weights(new_weights)
    after = service.submit(query)
    reweighted = served_graph.with_weights(new_weights)
    assert after == top_r_communities(reweighted, **query.solver_kwargs())
    assert after != before
    # Same topology object: CSR and core caches were not rebuilt.
    assert service.graph.csr is served_graph.csr
    assert service.stats()["result_cache"]["size"] == 1


def test_update_weights_refreshes_pooled_structures(served_graph):
    service = QueryService(served_graph)
    query = InfluentialQuery(k=3, r=4, f="sum", eps=0.05)
    service.submit(query)  # populates pooled structures
    new_weights = make_rng(123).uniform(0.1, 30.0, served_graph.n)
    service.update_weights(new_weights)
    reweighted = served_graph.with_weights(new_weights)
    assert service.submit(query) == top_r_communities(
        reweighted, **query.solver_kwargs()
    )


def test_invalidate_per_k(served_graph):
    service = QueryService(served_graph)
    service.submit(InfluentialQuery(k=2, r=1))
    service.submit(InfluentialQuery(k=3, r=1))
    assert service.invalidate(k=2) == 1
    assert service.stats()["result_cache"]["size"] == 1
    assert service.invalidate() == 1
    assert service.stats()["result_cache"]["size"] == 0


def test_replace_graph_resets_everything(served_graph):
    service = QueryService(served_graph)
    service.submit(InfluentialQuery(k=2, r=1))
    other = gnm_random_graph(60, 240, seed=5).with_weights(
        make_rng(6).uniform(0.5, 5.0, 60)
    )
    service.replace_graph(other)
    assert service.graph is other
    assert service.stats()["result_cache"]["size"] == 0
    query = InfluentialQuery(k=2, r=2)
    assert service.submit(query) == top_r_communities(
        other, **query.solver_kwargs()
    )


def test_truss_queries_served_and_cached(served_graph):
    service = QueryService(served_graph)
    query = InfluentialQuery(k=3, r=2, f="sum", cohesion="truss")
    assert service.submit(query) == truss_top_r_sum(served_graph, 3, 2, "sum")
    solves = service.solver_calls
    service.submit(query)
    assert service.solver_calls == solves
    assert service.submit(
        InfluentialQuery(k=3, r=2, f="min", cohesion="truss")
    ) == truss_top_r_min(served_graph, 3, 2)
    # Above tmax: served empty without running the solver machinery.
    assert len(service.submit(
        InfluentialQuery(k=service.tmax + 1, r=2, f="sum", cohesion="truss")
    )) == 0


def test_truss_rejections_mirror_solver_errors(served_graph):
    service = QueryService(served_graph)
    with pytest.raises(SolverError):
        service.submit(InfluentialQuery(k=3, r=2, f="avg", cohesion="truss"))
    with pytest.raises(SolverError):
        service.submit(
            InfluentialQuery(k=3, r=2, f="sum", s=10, cohesion="truss")
        )


def test_engine_pool_reused_across_queries(served_graph):
    # Pin csr: under a set-backend ambient default (the CI matrix) the
    # solvers rightly bypass the pool, which is what this test measures.
    service = QueryService(served_graph, backend="csr")
    service.submit(InfluentialQuery(k=3, r=4, f="sum"))
    service.submit(InfluentialQuery(k=3, r=4, f="sum", eps=0.2))
    pool_stats = service.stats()["engine_pool"]
    assert pool_stats["ks_seeded"] == [3]
    assert pool_stats["structure_hits"] > 0


def test_set_backend_service_matches_csr(served_graph):
    csr = QueryService(served_graph, backend="csr")
    alt = QueryService(served_graph, backend="set")
    for query in MIXED_WORKLOAD[:4]:
        assert csr.submit(query) == alt.submit(query)


def test_top_r_many_wrapper(served_graph):
    queries = [
        {"k": 2, "r": 2, "f": "sum"},
        InfluentialQuery(k=3, r=1, f="min"),
        {"k": 2, "r": 2, "f": "sum"},
    ]
    results = top_r_many(served_graph, queries)
    assert len(results) == 3
    assert results[0] == results[2]
    assert results[0] == top_r_communities(served_graph, k=2, r=2, f="sum")


def test_zero_cache_size_still_serves(served_graph):
    service = QueryService(served_graph, cache_size=0)
    query = InfluentialQuery(k=3, r=2, f="sum")
    assert service.submit(query) == service.submit(query)
    assert service.solver_calls == 2  # nothing was cached


def test_fast_path_preserves_solver_validation_errors(served_graph):
    # Above-kmax queries short-circuit ONLY when no solver-side validation
    # could fire: invalid eps / seed_order must raise exactly as cold.
    service = QueryService(served_graph)
    oversized = service.kmax + 5
    with pytest.raises(SolverError):
        top_r_communities(served_graph, k=oversized, r=2, f="sum", eps=1.5)
    with pytest.raises(SolverError):
        service.submit(InfluentialQuery(k=oversized, r=2, f="sum", eps=1.5))
    with pytest.raises(SolverError):
        service.submit(
            InfluentialQuery(k=oversized, r=2, f="avg", seed_order="bogus")
        )
    # Valid parameters still take the fast path to an empty result.
    assert len(service.submit(
        InfluentialQuery(k=oversized, r=2, f="sum", eps=0.1)
    )) == 0


def test_oversized_ks_share_one_pool_state(served_graph):
    service = QueryService(served_graph, backend="csr")
    pool = service.engine_pool
    states = {
        id(pool._state_for(service.kmax + extra)) for extra in range(1, 30)
    }
    assert len(states) == 1                      # one shared empty state
    assert pool._state_for(service.kmax + 1).owner is None
    assert service.stats()["engine_pool"]["ks_seeded"] == []


def test_truss_min_fast_path_preserves_r_validation(served_graph):
    service = QueryService(served_graph)
    with pytest.raises(SolverError):  # cold truss_top_r_min raises for r=0
        service.submit(
            InfluentialQuery(k=service.tmax + 40, r=0, f="min",
                             cohesion="truss")
        )


def test_per_k_seed_states_are_lru_bounded(served_graph):
    from repro.serving.engine_pool import ExpansionEnginePool

    pool = ExpansionEnginePool(served_graph, k_state_capacity=2)
    for k in (2, 3, 4):
        assert pool.seed_members(k)
    assert len(pool._per_k) == 2  # k=2 evicted
    # Evicted ks are recomputed on demand, identically.
    from repro.core.kcore import connected_kcore_components

    expected = [
        sorted(c) for c in connected_kcore_components(
            served_graph, range(served_graph.n), 2
        )
    ]
    assert [m.ids.tolist() for m in pool.seed_members(2)] == expected
