"""LRU cache semantics: recency, eviction, invalidation, stats."""

import pytest

from repro.serving.cache import LRUCache


def test_put_get_roundtrip():
    cache = LRUCache(4)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("missing") is None
    assert cache.get("missing", 9) == 9
    assert cache.stats() == {
        "size": 1, "capacity": 4, "hits": 1, "misses": 2, "evictions": 0
    }


def test_eviction_is_least_recently_used():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")          # refresh a: b is now the LRU entry
    cache.put("c", 3)       # evicts b
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.evictions == 1


def test_put_refreshes_recency_and_overwrites():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)      # refresh + overwrite; b becomes LRU
    cache.put("c", 3)
    assert cache.get("a") == 10
    assert "b" not in cache


def test_zero_capacity_disables_storage():
    cache = LRUCache(0)
    cache.put("a", 1)
    assert "a" not in cache
    assert cache.get("a") is None
    assert len(cache) == 0
    assert cache.misses == 1 and cache.evictions == 0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        LRUCache(-1)


def test_invalidate_single_key():
    cache = LRUCache(4)
    cache.put("a", 1)
    assert cache.invalidate("a") is True
    assert cache.invalidate("a") is False
    assert "a" not in cache


def test_invalidate_where_predicate():
    cache = LRUCache(8)
    for k in range(6):
        cache.put(("q", k), k)
    dropped = cache.invalidate_where(lambda key: key[1] % 2 == 0)
    assert dropped == 3
    assert len(cache) == 3
    assert ("q", 1) in cache and ("q", 0) not in cache


def test_clear_keeps_lifetime_counters():
    cache = LRUCache(4)
    cache.put("a", 1)
    cache.get("a")
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 1


def test_contains_and_values_do_not_touch_counters():
    cache = LRUCache(4)
    cache.put("a", 1)
    cache.put("b", 2)
    assert "a" in cache
    assert cache.values() == [1, 2]
    assert cache.hits == 0 and cache.misses == 0
    # values() order is LRU-first: refreshing "a" moves it to the back.
    cache.get("a")
    assert cache.values() == [2, 1]


def test_iteration_order_is_lru_first():
    cache = LRUCache(4)
    for key in ("a", "b", "c"):
        cache.put(key, key)
    cache.get("a")
    assert list(cache) == ["b", "c", "a"]
