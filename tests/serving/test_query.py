"""InfluentialQuery: canonical cache keys, coercion, validation."""

import pytest

from repro.aggregators.summation import Sum, SumSurplus
from repro.errors import SpecError
from repro.serving.query import InfluentialQuery


def test_cache_key_canonicalises_aggregator_spellings():
    by_name = InfluentialQuery(k=4, r=5, f="sum-surplus(2)")
    by_instance = InfluentialQuery(k=4, r=5, f=SumSurplus(2.0))
    assert by_name.cache_key() == by_instance.cache_key()
    assert InfluentialQuery(k=4, r=5, f="sum").cache_key() == (
        InfluentialQuery(k=4, r=5, f=Sum()).cache_key()
    )


def test_cache_key_excludes_backend_but_keeps_semantics():
    base = InfluentialQuery(k=4, r=5, f="sum")
    assert base.cache_key() == (
        InfluentialQuery(k=4, r=5, f="sum", backend="set").cache_key()
    )
    for variant in (
        InfluentialQuery(k=5, r=5),
        InfluentialQuery(k=4, r=6),
        InfluentialQuery(k=4, r=5, f="min"),
        InfluentialQuery(k=4, r=5, s=10),
        InfluentialQuery(k=4, r=5, eps=0.1),
        InfluentialQuery(k=4, r=5, method="naive"),
        InfluentialQuery(k=4, r=5, non_overlapping=True),
        InfluentialQuery(k=4, r=5, greedy=False),
        InfluentialQuery(k=4, r=5, seed_order="weight"),
        InfluentialQuery(k=4, r=5, rng_seed=7),
        InfluentialQuery(k=4, r=5, cohesion="truss"),
    ):
        assert variant.cache_key() != base.cache_key(), variant


def test_cache_key_places_k_at_index_one():
    # The service's per-k invalidation depends on this layout.
    assert InfluentialQuery(k=9, r=2).cache_key()[1] == 9


def test_create_from_mapping_and_overrides():
    query = InfluentialQuery.create({"k": 3, "r": 2, "f": "min"}, r=4)
    assert query == InfluentialQuery(k=3, r=4, f="min")
    same = InfluentialQuery(k=3, r=2)
    assert InfluentialQuery.create(same) is same
    assert InfluentialQuery.create(same, eps=0.2).eps == 0.2


def test_create_rejects_unknown_fields_and_types():
    with pytest.raises(SpecError):
        InfluentialQuery.create({"k": 3, "r": 2, "epsilon": 0.1})
    with pytest.raises(SpecError):
        InfluentialQuery.create([3, 2])


def test_unknown_cohesion_rejected():
    with pytest.raises(SpecError):
        InfluentialQuery(k=3, r=2, cohesion="clique")


def test_solver_kwargs_round_trip():
    query = InfluentialQuery(
        k=3, r=2, f="avg", s=8, method="local", seed_order="weight", rng_seed=5
    )
    kwargs = query.solver_kwargs()
    assert kwargs["k"] == 3 and kwargs["s"] == 8
    assert "backend" not in kwargs and "cohesion" not in kwargs


def test_describe_mentions_non_defaults():
    text = InfluentialQuery(
        k=3, r=2, f="min", eps=0.25, non_overlapping=True, cohesion="truss"
    ).describe()
    assert "k=3" in text and "eps=0.25" in text
    assert "tonic" in text and "cohesion=truss" in text


def test_field_types_validated():
    # JSON workloads deliver arbitrary types; they must fail as SpecError
    # (the CLI's error contract), not as TypeErrors inside a solver.
    with pytest.raises(SpecError):
        InfluentialQuery(k="4", r=2)
    with pytest.raises(SpecError):
        InfluentialQuery(k=4, r=2.5)
    with pytest.raises(SpecError):
        InfluentialQuery(k=True, r=2)
    with pytest.raises(SpecError):
        InfluentialQuery(k=4, r=2, s="10")
    with pytest.raises(SpecError):
        InfluentialQuery(k=4, r=2, eps="0.1")
    with pytest.raises(SpecError):
        InfluentialQuery(k=4, r=2, non_overlapping="yes")
    with pytest.raises(SpecError):
        InfluentialQuery(k=4, r=2, f=7)
    with pytest.raises(SpecError):
        InfluentialQuery(k=4, r=2, seed_order=3)
    # Plain ints/floats in valid positions still construct fine.
    InfluentialQuery(k=4, r=2, eps=0, s=10, rng_seed=3)


# ----------------------------------------------------------------------
# Label constraints on the query object
# ----------------------------------------------------------------------
def test_constraints_normalise_to_predicate():
    from repro.influential.constraints import LabelPredicate

    query = InfluentialQuery(k=4, r=2, constraints={"labels": ["b", "a", "b"]})
    assert isinstance(query.constraints, LabelPredicate)
    assert query.constraints.kind == "any"
    assert query.constraints.values == ("a", "b")
    # A pre-built predicate passes through untouched.
    predicate = LabelPredicate.from_json({"prefix": "g:"})
    assert InfluentialQuery(k=4, r=2, constraints=predicate).constraints is predicate


def test_constraints_spellings_share_a_cache_key():
    flat = InfluentialQuery(k=4, r=2, constraints={"labels": {"any": ["a", "b"]}})
    shuffled = InfluentialQuery(k=4, r=2, constraints={"labels": ["b", "a"]})
    assert flat.cache_key() == shuffled.cache_key()


def test_constraints_extend_cache_key_without_moving_fields():
    plain = InfluentialQuery(k=4, r=2)
    constrained = InfluentialQuery(k=4, r=2, constraints={"labels": "x"})
    assert plain.cache_key() != constrained.cache_key()
    # Positional reads baked into the pool/index layers stay valid.
    assert constrained.cache_key()[1] == 4
    assert plain.cache_key() == constrained.cache_key()[: len(plain.cache_key())] or (
        len(constrained.cache_key()) == len(plain.cache_key())
    )


def test_constraints_malformed_rejected():
    with pytest.raises(SpecError):
        InfluentialQuery(k=4, r=2, constraints={"colors": "red"})
    with pytest.raises(SpecError):
        InfluentialQuery(k=4, r=2, constraints={"labels": 42})
    with pytest.raises(SpecError):
        InfluentialQuery(k=4, r=2, constraints="labels=x")


def test_constraints_in_solver_kwargs_and_describe():
    query = InfluentialQuery(k=4, r=2, constraints={"labels": {"prefix": "g:"}})
    assert query.solver_kwargs()["labels"] == query.constraints
    assert "g:" in query.describe()
    assert InfluentialQuery(k=4, r=2).solver_kwargs()["labels"] is None


def test_constrained_query_pickles():
    import pickle

    query = InfluentialQuery(k=4, r=2, constraints={"labels": ["a", "b"]})
    clone = pickle.loads(pickle.dumps(query))
    assert clone == query and clone.cache_key() == query.cache_key()


def test_wire_dict_round_trips_through_create():
    import json

    queries = [
        InfluentialQuery(k=4, r=2),
        InfluentialQuery(k=4, r=2, constraints={"labels": {"prefix": "g:"}}),
        InfluentialQuery(k=3, r=1, f="sum-surplus(1.5)", eps=0.25),
        InfluentialQuery(k=2, r=2, non_overlapping=True, constraints={"labels": "x"}),
    ]
    for query in queries:
        body = json.loads(json.dumps(query.wire_dict()))  # JSON-able
        clone = InfluentialQuery.create(body)
        assert clone.cache_key() == query.cache_key()
    assert "constraints" not in InfluentialQuery(k=4, r=2).wire_dict()
