"""The HTTP front end: served-over-HTTP answers must equal cold solves.

Every test talks real HTTP (``http.client`` over a loopback socket) to a
server hosted on a background thread via
:func:`repro.serving.http.run_server_in_thread` — no handler is invoked
directly, so the request-line/header/body plumbing, keep-alive, and JSON
round-tripping are all under test.  The core guarantees:

* ``POST /query`` / ``POST /batch`` payloads are **identical** to
  payloads built from cold :func:`~repro.influential.api
  .top_r_communities` runs (the acceptance bar of the serving layer);
* concurrent identical requests **coalesce onto one solver call**
  (single-flight dedup keyed on the canonical cache key);
* malformed requests surface as structured 4xx JSON errors, with the
  same messages the library raises cold;
* weight updates and invalidation behave over HTTP exactly as they do
  on the in-process service.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.influential.api import top_r_communities
from repro.serving.http import ServingApp, result_payload, run_server_in_thread
from repro.serving.query import InfluentialQuery
from repro.serving.service import QueryService


# ----------------------------------------------------------------------
# Tiny HTTP client helpers (stdlib only, one connection per call)
# ----------------------------------------------------------------------
def _request(base_url: str, method: str, path: str, payload=None):
    host = base_url.removeprefix("http://")
    connection = http.client.HTTPConnection(host, timeout=60)
    try:
        body = None if payload is None else json.dumps(payload)
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def get(base_url: str, path: str):
    return _request(base_url, "GET", path)


def post(base_url: str, path: str, payload):
    return _request(base_url, "POST", path, payload)


@pytest.fixture
def served(figure1):
    """A served figure-1 graph: (service, app, base_url)."""
    service = QueryService(figure1)
    app = ServingApp(service)
    with run_server_in_thread(app) as base_url:
        yield service, app, base_url


# ----------------------------------------------------------------------
# Correctness: HTTP answers == cold solves
# ----------------------------------------------------------------------
QUERIES = [
    {"k": 2, "r": 2, "f": "sum"},
    {"k": 2, "r": 3, "f": "sum", "eps": 0.1},
    {"k": 2, "r": 2, "f": "min"},
    {"k": 2, "r": 1, "f": "max"},
    {"k": 2, "r": 2, "f": "avg", "s": 5},
    {"k": 2, "r": 2, "f": "sum-surplus(1)"},
    {"k": 99, "r": 1, "f": "sum"},  # far above kmax: empty, served fast-path
]


def test_query_payloads_match_cold_runs(served, figure1):
    __, ___, base_url = served
    for raw in QUERIES:
        status, payload = post(base_url, "/query", raw)
        assert status == 200, payload
        query = InfluentialQuery.create(raw)
        cold = top_r_communities(figure1, **query.solver_kwargs())
        assert payload == result_payload(query, cold)


def test_batch_matches_cold_runs_in_order(served, figure1):
    __, ___, base_url = served
    batch = QUERIES + QUERIES[:3]  # duplicates exercise dedup
    status, payload = post(base_url, "/batch", batch)
    assert status == 200, payload
    assert payload["count"] == len(batch)
    for raw, served_payload in zip(batch, payload["results"]):
        query = InfluentialQuery.create(raw)
        cold = top_r_communities(figure1, **query.solver_kwargs())
        assert served_payload == result_payload(query, cold)


def test_batch_accepts_queries_wrapper(served):
    __, ___, base_url = served
    status, payload = post(
        base_url, "/batch", {"queries": [{"k": 2, "r": 1, "f": "sum"}]}
    )
    assert status == 200
    assert payload["count"] == 1


def test_truss_cohesion_served(served, figure1):
    service, __, base_url = served
    status, payload = post(
        base_url, "/query", {"k": 3, "r": 2, "f": "sum", "cohesion": "truss"}
    )
    assert status == 200
    cold = QueryService(figure1).submit(
        InfluentialQuery(k=3, r=2, f="sum", cohesion="truss")
    )
    assert payload["values"] == cold.values()
    assert payload["communities"] == [sorted(c.vertices) for c in cold]


def test_repeated_query_is_cached(served):
    service, __, base_url = served
    raw = {"k": 2, "r": 2, "f": "sum"}
    first = post(base_url, "/query", raw)
    calls_after_first = service.solver_calls
    second = post(base_url, "/query", raw)
    assert first == second
    assert service.solver_calls == calls_after_first


def test_aggregator_spellings_share_cache_entry(served):
    service, __, base_url = served
    post(base_url, "/query", {"k": 2, "r": 2, "f": "sum-surplus(2)"})
    calls = service.solver_calls
    status, __payload = post(
        base_url, "/query", {"k": 2, "r": 2, "f": "sum-surplus(alpha=2)"}
    )
    assert status == 200
    assert service.solver_calls == calls  # canonical key collapsed them


def test_keep_alive_connection_reuse(served):
    __, ___, base_url = served
    host = base_url.removeprefix("http://")
    connection = http.client.HTTPConnection(host, timeout=60)
    try:
        for __ in range(3):
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
    finally:
        connection.close()


# ----------------------------------------------------------------------
# Single-flight dedup
# ----------------------------------------------------------------------
def test_concurrent_identical_requests_coalesce(served):
    service, app, base_url = served
    original_solve = service._solve
    release = threading.Event()

    def slow_solve(query):
        release.wait(timeout=30)  # hold until every request has arrived
        return original_solve(query)

    service._solve = slow_solve
    raw = {"k": 2, "r": 2, "f": "sum", "eps": 0.1}
    answers: list = [None] * 6
    threads = [
        threading.Thread(
            target=lambda i=i: answers.__setitem__(
                i, post(base_url, "/query", raw)
            )
        )
        for i in range(len(answers))
    ]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + 30
    while app.coalesced < len(answers) - 1 and time.monotonic() < deadline:
        time.sleep(0.01)
    release.set()
    for thread in threads:
        thread.join(timeout=60)
    assert all(status == 200 for status, __ in answers)
    assert len({json.dumps(payload) for __, payload in answers}) == 1
    assert service.solver_calls == 1, "identical burst must solve once"
    assert app.coalesced == len(answers) - 1


def test_failing_batch_member_does_not_cancel_coalesced_waiters(served):
    """A bad member 400s its batch without killing solves other
    connections coalesced onto (regression: gather() used to cancel the
    shared in-flight task, dropping the waiter's connection)."""
    service, app, base_url = served
    original_solve = service._solve
    release = threading.Event()

    def slow_solve(query):
        release.wait(timeout=30)
        return original_solve(query)

    service._solve = slow_solve
    good = {"k": 2, "r": 2, "f": "sum"}
    batch_answer: list = []
    waiter_answer: list = []
    batch_thread = threading.Thread(
        target=lambda: batch_answer.append(
            post(base_url, "/batch", [{"k": 0, "r": 1, "f": "sum"}, good])
        )
    )
    batch_thread.start()
    deadline = time.monotonic() + 30
    while len(app._inflight) < 2 and time.monotonic() < deadline:
        time.sleep(0.01)  # both members' solves are now in flight
    waiter_thread = threading.Thread(
        target=lambda: waiter_answer.append(post(base_url, "/query", good))
    )
    waiter_thread.start()
    deadline = time.monotonic() + 30
    while app.coalesced < 1 and time.monotonic() < deadline:
        time.sleep(0.01)
    release.set()
    batch_thread.join(timeout=60)
    waiter_thread.join(timeout=60)
    assert batch_answer and batch_answer[0][0] == 400
    assert waiter_answer, "coalesced waiter never got an HTTP response"
    status, payload = waiter_answer[0]
    assert status == 200
    assert payload["values"] == top_r_communities(
        service.graph, k=2, r=2, f="sum"
    ).values()


def test_loop_stays_responsive_during_solve(served):
    """Health checks answer while a slow solve occupies the solver thread."""
    service, __, base_url = served
    original_solve = service._solve
    release = threading.Event()

    def slow_solve(query):
        release.wait(timeout=30)
        return original_solve(query)

    service._solve = slow_solve
    result: list = []
    solver = threading.Thread(
        target=lambda: result.append(
            post(base_url, "/query", {"k": 2, "r": 1, "f": "sum"})
        )
    )
    solver.start()
    try:
        status, payload = get(base_url, "/healthz")
        assert status == 200 and payload["status"] == "ok"
    finally:
        release.set()
        solver.join(timeout=60)
    assert result and result[0][0] == 200


# ----------------------------------------------------------------------
# Validation / error paths
# ----------------------------------------------------------------------
def test_unknown_route_404(served):
    __, ___, base_url = served
    status, payload = get(base_url, "/nope")
    assert status == 404
    assert "endpoints" in payload


def test_wrong_method_405(served):
    __, ___, base_url = served
    status, __payload = get(base_url, "/query")
    assert status == 405


def test_invalid_json_400(served):
    __, ___, base_url = served
    host = base_url.removeprefix("http://")
    connection = http.client.HTTPConnection(host, timeout=60)
    try:
        connection.request("POST", "/query", body="{not json")
        response = connection.getresponse()
        assert response.status == 400
        body = json.loads(response.read())
        assert body["error"]["code"] == "invalid_json"
        assert "JSON" in body["error"]["detail"]
    finally:
        connection.close()


@pytest.mark.parametrize(
    "raw, fragment",
    [
        ([1, 2, 3], "JSON object"),
        ({"k": "four", "r": 5}, "integer"),
        ({"k": 2, "r": 2, "flavor": "sum"}, "unknown query field"),
        ({"k": 2, "r": 2, "f": "bogus"}, "unknown aggregator"),
        ({"k": 2, "r": 2, "cohesion": "lattice"}, "cohesion"),
        ({"k": 0, "r": 2, "f": "sum"}, "k"),
    ],
)
def test_bad_queries_400_with_library_message(served, raw, fragment):
    __, ___, base_url = served
    status, payload = post(base_url, "/query", raw)
    assert status == 400
    assert fragment in payload["error"]["detail"]


def test_batch_rejects_non_array(served):
    __, ___, base_url = served
    status, payload = post(base_url, "/batch", {"k": 2, "r": 2})
    assert status == 400
    assert "array" in payload["error"]["detail"]


def test_oversized_body_413(served):
    from repro.serving.http import MAX_BODY_BYTES

    __, ___, base_url = served
    host = base_url.removeprefix("http://")
    connection = http.client.HTTPConnection(host, timeout=60)
    try:
        connection.putrequest("POST", "/query")
        connection.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
        connection.endheaders()
        response = connection.getresponse()
        assert response.status == 413
    finally:
        connection.close()


def test_chunked_transfer_encoding_refused(served):
    """Chunked bodies are not implemented: a clear 501 + close, never a
    silent empty-body misread that desyncs the keep-alive stream."""
    __, ___, base_url = served
    host = base_url.removeprefix("http://")
    connection = http.client.HTTPConnection(host, timeout=60)
    try:
        connection.putrequest("POST", "/query")
        connection.putheader("Transfer-Encoding", "chunked")
        connection.endheaders()
        response = connection.getresponse()
        assert response.status == 501
        body = json.loads(response.read())
        assert body["error"]["code"] == "not_implemented"
        assert "transfer-encoding" in body["error"]["detail"]
    finally:
        connection.close()


def test_header_flood_431(served):
    __, ___, base_url = served
    host = base_url.removeprefix("http://")
    connection = http.client.HTTPConnection(host, timeout=60)
    try:
        connection.putrequest("GET", "/healthz")
        for index in range(150):
            connection.putheader(f"x-flood-{index}", "y")
        connection.endheaders()
        response = connection.getresponse()
        assert response.status == 431
    finally:
        connection.close()


def test_oversized_request_line_drops_connection_quietly(served):
    """A >64 KiB request line must not crash the handler task; the
    connection just closes (regression: asyncio's over-limit ValueError
    escaped the handler)."""
    import socket

    __, ___, base_url = served
    host, port = base_url.removeprefix("http://").split(":")
    with socket.create_connection((host, int(port)), timeout=60) as sock:
        sock.sendall(b"GET /" + b"a" * 70_000 + b" HTTP/1.1\r\n\r\n")
        sock.settimeout(10)
        received = sock.recv(4096)
    assert received == b""  # closed without a response, and no crash
    # ... and the server is still alive for the next client:
    status, payload = get(base_url, "/healthz")
    assert status == 200 and payload["status"] == "ok"


def test_per_k_invalidate_spares_inflight_other_ks(served):
    """Invalidating k=2 must not discard the in-flight k=3 single-flight
    entry (regression: the epoch bump dropped unrelated solves)."""
    service, app, base_url = served
    original_solve = service._solve
    release = threading.Event()

    def slow_solve(query):
        release.wait(timeout=30)
        return original_solve(query)

    service._solve = slow_solve
    slow_answer: list = []
    slow_thread = threading.Thread(
        target=lambda: slow_answer.append(
            post(base_url, "/query", {"k": 3, "r": 1, "f": "sum"})
        )
    )
    slow_thread.start()
    deadline = time.monotonic() + 30
    while not app._inflight and time.monotonic() < deadline:
        time.sleep(0.01)
    epoch_before = app._epoch
    status, __payload = post(base_url, "/invalidate", {"k": 2})
    assert status == 200
    assert app._epoch == epoch_before  # per-k: no global epoch bump
    assert app._inflight, "per-k invalidate dropped an unrelated in-flight solve"
    release.set()
    slow_thread.join(timeout=60)
    assert slow_answer and slow_answer[0][0] == 200
    # the k=3 result completed and cached despite the k=2 invalidation
    assert service.peek(InfluentialQuery(k=3, r=1, f="sum")) is not None


def test_http_error_counter(served):
    __, app, base_url = served
    before = app.http_errors
    post(base_url, "/query", {"k": 2, "r": 2, "f": "bogus"})
    get(base_url, "/nope")
    assert app.http_errors == before + 2


# ----------------------------------------------------------------------
# Mutation endpoints
# ----------------------------------------------------------------------
def test_update_weights_over_http(served, figure1):
    __, ___, base_url = served
    post(base_url, "/query", {"k": 2, "r": 2, "f": "sum"})  # warm the cache
    new_weights = [1.0] * figure1.n
    status, payload = post(base_url, "/update-weights", {"weights": new_weights})
    assert status == 200
    assert payload["status"] == "reweighted"
    status, answer = post(base_url, "/query", {"k": 2, "r": 2, "f": "sum"})
    assert status == 200
    cold = top_r_communities(figure1.with_weights(new_weights), k=2, r=2, f="sum")
    assert answer["values"] == cold.values()
    assert answer["communities"] == [sorted(c.vertices) for c in cold]


def test_update_weights_validation(served, figure1):
    __, ___, base_url = served
    status, payload = post(base_url, "/update-weights", {"weights": [1.0]})
    assert status == 400
    assert str(figure1.n) in payload["error"]["detail"]
    status, __payload = post(base_url, "/update-weights", {"nope": 1})
    assert status == 400
    status, payload = post(
        base_url, "/update-weights", {"weights": [-1.0] * figure1.n}
    )
    assert status == 400  # WeightError surfaces as a client error
    bad = ["x"] + [1.0] * (figure1.n - 1)
    status, health = get(base_url, "/healthz")
    epoch_before = health["epoch"]
    status, payload = post(base_url, "/update-weights", {"weights": bad})
    assert status == 400  # non-numeric elements: client error, not a 500
    assert "numbers" in payload["error"]["detail"]
    # a rejected body must not have cost any serving state (no epoch bump)
    status, health = get(base_url, "/healthz")
    assert health["epoch"] == epoch_before


def test_invalidate_endpoint(served):
    service, __, base_url = served
    post(base_url, "/query", {"k": 2, "r": 2, "f": "sum"})
    post(base_url, "/query", {"k": 3, "r": 2, "f": "sum"})
    status, payload = post(base_url, "/invalidate", {"k": 2})
    assert status == 200
    assert payload["dropped"] == 1
    status, payload = post(base_url, "/invalidate", {})
    assert status == 200
    assert payload["dropped"] == 1
    status, __payload = post(base_url, "/invalidate", {"k": "two"})
    assert status == 400


def test_stats_and_index_endpoints(served, figure1):
    __, ___, base_url = served
    post(base_url, "/query", {"k": 2, "r": 2, "f": "sum"})
    status, stats = get(base_url, "/stats")
    assert status == 200
    assert stats["graph"] == {"n": figure1.n, "m": figure1.m}
    assert stats["http"]["requests"] >= 2
    assert "result_cache" in stats and "engine_pool" in stats
    status, index = get(base_url, "/")
    assert status == 200
    assert "POST /query" in index["endpoints"]


# ----------------------------------------------------------------------
# Process-pool workers + snapshot-backed serving
# ----------------------------------------------------------------------
def test_worker_process_mode_matches_cold(figure1):
    service = QueryService(figure1)
    app = ServingApp(service, workers=2)
    with run_server_in_thread(app) as base_url:
        for raw in QUERIES[:4]:
            status, payload = post(base_url, "/query", raw)
            assert status == 200, payload
            query = InfluentialQuery.create(raw)
            cold = top_r_communities(figure1, **query.solver_kwargs())
            assert payload == result_payload(query, cold)
        # Weight updates restart the workers from the new payload.
        new_weights = [float(i + 1) for i in range(figure1.n)]
        status, __ = post(base_url, "/update-weights", {"weights": new_weights})
        assert status == 200
        status, answer = post(base_url, "/query", {"k": 2, "r": 1, "f": "sum"})
        assert status == 200
        cold = top_r_communities(
            figure1.with_weights(new_weights), k=2, r=1, f="sum"
        )
        assert answer["values"] == cold.values()


def test_serving_from_snapshot_over_http(figure1, tmp_path):
    from repro.serving.store import load_service, save_snapshot

    path = save_snapshot(QueryService(figure1), tmp_path / "snap")
    service = load_service(path)
    with run_server_in_thread(service) as base_url:
        status, payload = post(base_url, "/query", {"k": 2, "r": 2, "f": "sum"})
        assert status == 200
        cold = top_r_communities(figure1, k=2, r=2, f="sum")
        assert payload["values"] == cold.values()


def test_negative_workers_rejected(figure1):
    from repro.errors import SpecError

    with pytest.raises(SpecError):
        ServingApp(QueryService(figure1), workers=-1)


# ----------------------------------------------------------------------
# Queue bound: fresh misses beyond the depth shed with 503 + Retry-After
# ----------------------------------------------------------------------
def _request_with_headers(base_url: str, method: str, path: str, payload=None):
    host = base_url.removeprefix("http://")
    connection = http.client.HTTPConnection(host, timeout=60)
    try:
        body = None if payload is None else json.dumps(payload)
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return (
            response.status,
            json.loads(response.read()),
            dict(response.getheaders()),
        )
    finally:
        connection.close()


@pytest.fixture
def slow_served(figure1, monkeypatch):
    """A served app whose every solve takes ~0.3s, queue depth 1."""
    from repro.serving import service as service_module

    original = service_module.QueryService._solve

    def _slow_solve(self, query):
        time.sleep(0.3)
        return original(self, query)

    monkeypatch.setattr(service_module.QueryService, "_solve", _slow_solve)
    app = ServingApp(QueryService(figure1), max_queue_depth=1)
    with run_server_in_thread(app) as base_url:
        yield app, base_url


def test_queue_bound_sheds_with_retry_after(slow_served):
    app, base_url = slow_served
    distinct = [
        {"k": 2, "r": 2, "f": "sum"},
        {"k": 3, "r": 2, "f": "sum"},
        {"k": 2, "r": 1, "f": "min"},
    ]
    outcomes = []

    def _fire(raw):
        outcomes.append(
            _request_with_headers(base_url, "POST", "/query", raw)
        )

    threads = [
        threading.Thread(target=_fire, args=(raw,)) for raw in distinct
    ]
    threads[0].start()
    time.sleep(0.1)  # let the first solve occupy the queue
    for thread in threads[1:]:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    statuses = sorted(status for status, _b, _h in outcomes)
    assert statuses == [200, 503, 503]
    for status, body, headers in outcomes:
        if status == 503:
            assert "Retry-After" in headers
            assert int(headers["Retry-After"]) >= 1
            assert body["error"]["code"] == "queue_full"
            assert "queue is full" in body["error"]["detail"]
    assert app.shed == 2
    # Once the convoy clears, the same queries are admitted again.
    status, _body, _headers = _request_with_headers(
        base_url, "POST", "/query", distinct[1]
    )
    assert status == 200


def test_coalesced_and_cached_never_shed(slow_served):
    app, base_url = slow_served
    raw = {"k": 2, "r": 2, "f": "sum"}
    outcomes = []

    def _fire():
        outcomes.append(post(base_url, "/query", raw))

    # Identical queries coalesce onto one in-flight solve: depth 1 is
    # never exceeded, nobody sheds.
    threads = [threading.Thread(target=_fire) for _ in range(3)]
    for thread in threads:
        thread.start()
        time.sleep(0.05)
    for thread in threads:
        thread.join(timeout=30)
    assert [status for status, _b in outcomes] == [200, 200, 200]
    assert app.shed == 0
    # And a cache hit while the queue is "full" of another solve.
    blocker = threading.Thread(
        target=post, args=(base_url, "/query", {"k": 3, "r": 1, "f": "sum"})
    )
    blocker.start()
    time.sleep(0.1)
    status, _body = post(base_url, "/query", raw)  # cached from above
    assert status == 200
    blocker.join(timeout=30)
    assert app.shed == 0


def test_stats_expose_queue_and_fleet_fields(served):
    __, app, base_url = served
    status, stats = get(base_url, "/stats")
    assert status == 200
    assert stats["http"]["shed"] == 0
    assert stats["http"]["max_queue_depth"] == 0
    assert stats["http"]["draining"] is False
    assert stats["epoch"] == 0
    assert stats["rss_bytes"] > 0
    assert stats["replication_lag"] is None
    status, health = get(base_url, "/healthz")
    assert health["rss_bytes"] > 0
    assert health["replication_lag"] is None
    assert "member" not in health
