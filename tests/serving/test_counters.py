"""Counter consistency and deterministic sharding (PR 6 bugfixes).

Two drift bugs are pinned here.  ``submit`` used to bump
``queries_served`` *before* a solve that could raise, so rejected
queries inflated the served tally forever; ``submit_many`` used to add
``len(todo)`` to ``solver_calls`` whether or not the shard futures
succeeded.  Both counters now move only on success — ``queries_served``
counts answered queries, ``solver_calls`` completed solver runs — and
shard assignment goes through a stable CRC-32 digest instead of
``hash()``, whose PYTHONHASHSEED salting shuffled shards (and bench
timings) across interpreter runs.
"""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.serving.query import InfluentialQuery
from repro.serving.service import QueryService, _stable_shard

BAD_QUERY = InfluentialQuery(k=-1, r=2, f="sum")
GOOD_QUERIES = [
    InfluentialQuery(k=2, r=2, f="sum"),
    InfluentialQuery(k=2, r=3, f="sum"),
    InfluentialQuery(k=1, r=2, f="min"),
    InfluentialQuery(k=3, r=1, f="avg"),
]


def test_rejected_submit_moves_no_counters(two_triangles):
    service = QueryService(two_triangles)
    with pytest.raises(ReproError):
        service.submit(BAD_QUERY)
    assert service.queries_served == 0
    assert service.solver_calls == 0


def test_successful_submit_counts_once(two_triangles):
    service = QueryService(two_triangles)
    service.submit(GOOD_QUERIES[0])
    assert service.queries_served == 1
    assert service.solver_calls == 1
    service.submit(GOOD_QUERIES[0])  # cache hit: served, not solved
    assert service.queries_served == 2
    assert service.solver_calls == 1


def test_failed_batch_counts_completed_shards_only(two_triangles):
    service = QueryService(two_triangles)
    batch = GOOD_QUERIES + [BAD_QUERY]
    with pytest.raises(ReproError):
        service.submit_many(batch, workers=2)
    # The batch as a whole was never answered...
    assert service.queries_served == 0
    # ...but whatever shards completed were counted and cached: their
    # results must serve later batches without re-solving.
    completed_keys = [
        q.cache_key() for q in GOOD_QUERIES if service.peek(q) is not None
    ]
    assert service.solver_calls == len(completed_keys)
    before = service.solver_calls
    results = service.submit_many(GOOD_QUERIES, workers=2)
    assert len(results) == len(GOOD_QUERIES)
    assert service.queries_served == len(GOOD_QUERIES)
    assert service.solver_calls == before + (len(GOOD_QUERIES) - len(completed_keys))


def test_sequential_batch_failure_is_also_consistent(two_triangles):
    service = QueryService(two_triangles)
    with pytest.raises(ReproError):
        service.submit_many([GOOD_QUERIES[0], BAD_QUERY], workers=1)
    # Sequential path delegates to submit(): the good query was answered
    # before the bad one raised.
    assert service.queries_served == 1
    assert service.solver_calls == 1


def test_rejected_http_query_moves_no_counters(two_triangles):
    # The HTTP front end had the same drift: answer() bumped
    # queries_served before the solve.  Now a 4xx leaves both counters
    # untouched, and a 200 counts exactly one served query per waiter.
    from tests.serving.test_http import post

    from repro.serving.http import ServingApp, run_server_in_thread

    service = QueryService(two_triangles)
    app = ServingApp(service)
    with run_server_in_thread(app) as base_url:
        status, __ = post(base_url, "/query", {"k": -1, "r": 2, "f": "sum"})
        assert status == 400
        assert service.queries_served == 0
        assert service.solver_calls == 0
        status, __ = post(base_url, "/query", {"k": 2, "r": 2, "f": "sum"})
        assert status == 200
        assert service.queries_served == 1
        assert service.solver_calls == 1


def test_stable_shard_is_pinned_across_interpreters():
    # Literal digests: a change in the key layout or the digest function
    # silently reshuffles shard assignment — this test makes it loud.
    # (Re-pinned when the key gained its constraints slot.)
    assert _stable_shard(InfluentialQuery(k=2, r=3, f="sum").cache_key()) == 2996404414
    assert (
        _stable_shard(
            InfluentialQuery(k=4, r=5, f="sum-surplus(1.5)", eps=0.25).cache_key()
        )
        == 3824327851
    )
    assert (
        _stable_shard(
            InfluentialQuery(k=1, r=1, f="min", cohesion="truss").cache_key()
        )
        == 2885373568
    )


def test_stable_shard_ignores_hash_salt(two_triangles):
    # The same key must land on the same shard no matter the seed; the
    # digest is a pure function of the canonical key repr.
    keys = [q.cache_key() for q in GOOD_QUERIES]
    assignment = [_stable_shard(key) % 3 for key in keys]
    assert assignment == [_stable_shard(key) % 3 for key in keys]
    import pathlib
    import subprocess
    import sys

    import repro

    src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    script = (
        "from repro.serving.service import _stable_shard\n"
        "from repro.serving.query import InfluentialQuery\n"
        "qs = [InfluentialQuery(k=2, r=2, f='sum'),"
        " InfluentialQuery(k=2, r=3, f='sum'),"
        " InfluentialQuery(k=1, r=2, f='min'),"
        " InfluentialQuery(k=3, r=1, f='avg')]\n"
        "print([_stable_shard(q.cache_key()) % 3 for q in qs])\n"
    )
    for seed in ("0", "12345"):
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": src, "PYTHONHASHSEED": seed},
            check=True,
        )
        assert out.stdout.strip() == str(assignment)
