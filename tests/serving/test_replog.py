"""Replication log: append atomicity, torn tails, deterministic skips."""

from __future__ import annotations

import json

import pytest

from repro.serving.replog import (
    LogCursor,
    LogRecord,
    ReplicationLog,
    head_seq,
)


@pytest.fixture
def log_path(tmp_path):
    return tmp_path / "repl.log"


def test_append_assigns_increasing_seqs(log_path):
    log = ReplicationLog(log_path)
    first = log.append("update-edges", {"insert": [[0, 1]]})
    second = log.append("update-weights", {"weights": [1.0]})
    assert (first.seq, second.seq) == (1, 2)
    assert head_seq(log_path) == 2


def test_two_appenders_share_one_sequence(log_path):
    a = ReplicationLog(log_path)
    b = ReplicationLog(log_path)
    seqs = [
        a.append("update-edges", {"insert": [[0, 1]]}).seq,
        b.append("update-edges", {"insert": [[1, 2]]}).seq,
        a.append("update-edges", {"insert": [[2, 3]]}).seq,
    ]
    assert seqs == [1, 2, 3]


def test_cursor_tails_incrementally(log_path):
    log = ReplicationLog(log_path)
    cursor = LogCursor(log_path)
    assert cursor.poll() == []
    log.append("update-edges", {"insert": [[0, 1]]})
    records = cursor.poll()
    assert [r.seq for r in records] == [1]
    assert cursor.poll() == []  # nothing new
    log.append("update-edges", {"insert": [[1, 2]]})
    assert [r.seq for r in cursor.poll()] == [2]


def test_start_seq_skips_absorbed_prefix(log_path):
    log = ReplicationLog(log_path)
    for i in range(4):
        log.append("update-edges", {"insert": [[i, i + 1]]})
    cursor = LogCursor(log_path, start_seq=2)
    assert [r.seq for r in cursor.poll()] == [3, 4]


def test_torn_tail_is_invisible_until_completed(log_path):
    log = ReplicationLog(log_path)
    log.append("update-edges", {"insert": [[0, 1]]})
    cursor = LogCursor(log_path)
    assert len(cursor.poll()) == 1
    # Simulate a crash mid-append: bytes with no trailing newline.
    half = LogRecord(
        seq=2, op="update-edges", payload={"insert": [[1, 2]]}, ts=0.0
    ).to_line()[:-1]
    with open(log_path, "ab") as handle:
        handle.write(half[: len(half) // 2])
    assert cursor.poll() == []  # incomplete — not consumed
    with open(log_path, "ab") as handle:
        handle.write(half[len(half) // 2 :] + b"\n")
    assert [r.seq for r in cursor.poll()] == [2]


def test_append_repairs_torn_tail(log_path):
    """An append after a crashed writer terminates the torn tail, so the
    new record stays parseable everywhere (only the crashed writer's own
    record is lost)."""
    log = ReplicationLog(log_path)
    log.append("update-edges", {"insert": [[0, 1]]})
    with open(log_path, "ab") as handle:
        handle.write(b'{"seq": 2, "op": "update-e')  # crash mid-append
    record = log.append("update-edges", {"insert": [[1, 2]]})
    assert record.seq == 2
    cursor = LogCursor(log_path)
    assert [r.seq for r in cursor.poll()] == [1, 2]
    assert cursor.skipped == 1  # the terminated torn line, malformed
    assert head_seq(log_path) == 2


def test_append_repairs_unterminated_complete_tail(log_path):
    """A tail that is a complete record missing only its newline is
    revived by the repair terminator, so the next seq must land past it
    instead of colliding with it."""
    log = ReplicationLog(log_path)
    log.append("update-edges", {"insert": [[0, 1]]})
    unterminated = LogRecord(
        seq=2, op="update-edges", payload={"insert": [[1, 2]]}, ts=0.0
    ).to_line()[:-1]
    with open(log_path, "ab") as handle:
        handle.write(unterminated)
    record = log.append("update-edges", {"insert": [[2, 3]]})
    assert record.seq == 3
    assert [r.seq for r in LogCursor(log_path).poll()] == [1, 2, 3]


def test_malformed_and_stale_lines_are_skipped_and_counted(log_path):
    with open(log_path, "wb") as handle:
        handle.write(b"not json at all\n")
        handle.write(b'{"seq": true, "op": "update-edges", "payload": {}}\n')
        handle.write(
            json.dumps(
                {"seq": 5, "op": "update-edges", "payload": {"insert": []}}
            ).encode() + b"\n"
        )
        handle.write(  # stale: seq goes backwards
            json.dumps(
                {"seq": 3, "op": "update-edges", "payload": {"insert": []}}
            ).encode() + b"\n"
        )
        handle.write(
            json.dumps(
                {"seq": 6, "op": "unknown-op", "payload": {}}
            ).encode() + b"\n"
        )
    cursor = LogCursor(log_path)
    records = cursor.poll()
    assert [r.seq for r in records] == [5]
    assert cursor.skipped == 4


def test_max_records_pages_without_losing_lines(log_path):
    log = ReplicationLog(log_path)
    for i in range(5):
        log.append("update-edges", {"insert": [[i, i + 1]]})
    cursor = LogCursor(log_path)
    assert [r.seq for r in cursor.poll(max_records=2)] == [1, 2]
    assert [r.seq for r in cursor.poll(max_records=2)] == [3, 4]
    assert [r.seq for r in cursor.poll(max_records=2)] == [5]
    assert cursor.poll() == []


def test_missing_file_is_empty(log_path):
    cursor = LogCursor(log_path)
    assert cursor.poll() == []
    assert head_seq(log_path) == 0


def test_shrunk_file_restarts_without_duplicates(log_path):
    log = ReplicationLog(log_path)
    log.append("update-edges", {"insert": [[0, 1]]})
    log.append("update-edges", {"insert": [[1, 2]]})
    cursor = LogCursor(log_path)
    assert len(cursor.poll()) == 2
    # Rotate: recreate the log with only the latest record re-stamped.
    with open(log_path, "wb") as handle:
        handle.write(
            LogRecord(
                seq=3, op="update-edges", payload={"insert": [[2, 3]]}, ts=0.0
            ).to_line()
        )
    assert [r.seq for r in cursor.poll()] == [3]


def test_epoch_mirrors_seq_on_disk(log_path):
    ReplicationLog(log_path).append("update-edges", {"insert": [[0, 1]]})
    doc = json.loads(log_path.read_text())
    assert doc["epoch"] == doc["seq"] == 1


def test_append_rejects_unknown_op(log_path):
    with pytest.raises(ValueError):
        ReplicationLog(log_path).append("drop-table", {})
