"""SharedSubstrate: one copy of the graph, many attached services.

The acceptance bar is byte-identical serving: a service built over an
attached substrate (shm segments or a snapshot directory) must answer
every query exactly like the service it was published from — and the
segments must never outlive their owner's unlink.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.serving.service import QueryService
from repro.serving.store import save_snapshot
from repro.serving.substrate import (
    SEGMENT_PREFIX,
    SharedSubstrate,
    SubstrateError,
)


def _shm_segments() -> list[str]:
    try:
        return [
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(SEGMENT_PREFIX)
        ]
    except FileNotFoundError:  # pragma: no cover — non-Linux
        return []


@pytest.fixture
def published(figure1):
    service = QueryService(figure1)
    substrate = SharedSubstrate.publish(service)
    try:
        yield service, substrate
    finally:
        substrate.unlink()


def test_publish_attach_roundtrip(published):
    service, substrate = published
    attached = SharedSubstrate.attach(substrate.descriptor())
    try:
        twin = attached.build_service()
        graph = twin.graph
        assert graph.n == service.graph.n
        assert graph.m == service.graph.m
        original = service.submit({"k": 2, "r": 2, "f": "sum"})
        mirrored = twin.submit({"k": 2, "r": 2, "f": "sum"})
        assert [sorted(c.vertices) for c in mirrored] == [
            sorted(c.vertices) for c in original
        ]
        assert mirrored.values() == original.values()
    finally:
        attached.close()


def test_attached_views_are_readonly(published):
    _service, substrate = published
    attached = SharedSubstrate.attach(substrate.descriptor())
    try:
        twin = attached.build_service()
        csr = twin.graph.csr
        with pytest.raises((ValueError, RuntimeError)):
            csr.indices[0] = 99
    finally:
        attached.close()


def test_core_numbers_carried_not_recomputed(published):
    service, substrate = published
    attached = SharedSubstrate.attach(substrate.descriptor())
    try:
        twin = attached.build_service()
        assert np.array_equal(
            twin.core_numbers, service.core_numbers
        )
    finally:
        attached.close()


def test_unlink_removes_segments(figure1):
    before = set(_shm_segments())
    substrate = SharedSubstrate.publish(QueryService(figure1))
    created = set(_shm_segments()) - before
    assert created, "publish created no /dev/shm segments"
    substrate.unlink()
    assert not (set(_shm_segments()) & created)
    # Unlink is idempotent.
    substrate.unlink()


def test_unlinked_substrate_stays_usable_in_attacher(figure1):
    # POSIX shm semantics: unlink removes the name, not live mappings —
    # an attacher that already mapped keeps serving.
    service = QueryService(figure1)
    substrate = SharedSubstrate.publish(service)
    attached = SharedSubstrate.attach(substrate.descriptor())
    substrate.unlink()
    try:
        twin = attached.build_service()
        assert twin.graph.m == service.graph.m
    finally:
        attached.close()


def test_snapshot_kind_substrate(figure1, tmp_path):
    service = QueryService(figure1)
    path = save_snapshot(service, tmp_path / "snap")
    substrate = SharedSubstrate.from_snapshot(path)
    try:
        twin = substrate.build_service()
        original = service.submit({"k": 2, "r": 2, "f": "sum"})
        mirrored = twin.submit({"k": 2, "r": 2, "f": "sum"})
        assert mirrored.values() == original.values()
        # Snapshot substrates own nothing in /dev/shm.
        assert substrate.descriptor()["kind"] == "snapshot"
    finally:
        substrate.close()


def test_index_travels_through_substrate(figure1):
    service = QueryService(figure1)
    service.enable_index(depth=4)
    substrate = SharedSubstrate.publish(service)
    try:
        attached = SharedSubstrate.attach(substrate.descriptor())
        try:
            twin = attached.build_service()
            assert twin.index is not None
            assert twin.index.depth == service.index.depth
        finally:
            attached.close()
    finally:
        substrate.unlink()


def test_attach_rejects_garbage_descriptor():
    with pytest.raises(SubstrateError):
        SharedSubstrate.attach({"kind": "shm", "arrays": {}})
    with pytest.raises(SubstrateError):
        SharedSubstrate.attach({"kind": "nope"})


def test_submit_many_zero_copy_matches_serial(figure1):
    service = QueryService(figure1)
    queries = [
        {"k": 2, "r": 2, "f": "sum"},
        {"k": 3, "r": 1, "f": "sum"},
    ]
    serial = [service.submit(q) for q in queries]
    before = set(_shm_segments())
    sharded = service.submit_many(queries, workers=2)
    assert [r.values() for r in sharded] == [r.values() for r in serial]
    # The substrate published for the worker pool must be gone again.
    assert not (set(_shm_segments()) - before)
