"""Solution certification against Definitions 3-5."""

import pytest

from repro.aggregators.minmax import Minimum
from repro.errors import CertificationError
from repro.hardness.certificates import (
    certify_community,
    certify_result_set,
    check_cohesive,
    check_connected,
    check_maximal,
)
from repro.influential.community import Community
from repro.influential.results import ResultSet


def test_check_cohesive(tiny):
    assert check_cohesive(tiny, frozenset({0, 1, 2, 3}), 3)
    assert not check_cohesive(tiny, frozenset({0, 1, 2, 3, 4}), 3)
    assert not check_cohesive(tiny, frozenset(), 1)


def test_check_connected(two_triangles):
    assert check_connected(two_triangles, frozenset({0, 1, 2}))
    assert not check_connected(two_triangles, frozenset({0, 1, 2, 3}))


def test_check_maximal_min(tiny):
    # {1,2,3} (weights 2,3,4) extends to K4 adding vertex 0 (weight 1):
    # min drops, so the extension does NOT break maximality under min.
    assert check_maximal(tiny, frozenset({1, 2, 3}), 2, Minimum())
    # Under max however the same extension keeps f... no: adding 0 keeps
    # max at 4 -> NOT maximal under max.
    from repro.aggregators.minmax import Maximum

    assert not check_maximal(tiny, frozenset({1, 2, 3}), 2, Maximum())


def test_certify_valid_community(figure1):
    community = Community(frozenset(range(11)), 203.0, "sum", 2)
    certify_community(figure1, community)  # no raise


def test_certify_rejects_bad_degree(figure1):
    community = Community(frozenset({0, 1}), 66.0, "sum", 2)
    with pytest.raises(CertificationError, match="degree"):
        certify_community(figure1, community)


def test_certify_rejects_disconnected(two_triangles):
    community = Community(frozenset(range(6)), 66.0, "sum", 2)
    with pytest.raises(CertificationError, match="not connected"):
        certify_community(two_triangles, community)


def test_certify_rejects_wrong_value(figure1):
    community = Community(frozenset(range(11)), 999.0, "sum", 2)
    with pytest.raises(CertificationError, match="recomputed"):
        certify_community(figure1, community)


def test_certify_rejects_size_violation(figure1):
    community = Community(frozenset(range(11)), 203.0, "sum", 2)
    with pytest.raises(CertificationError, match="size"):
        certify_community(figure1, community, s=5)


def test_certify_maximality_option(tiny):
    community = Community(frozenset({1, 2, 3}), 4.0, "max", 2)
    with pytest.raises(CertificationError, match="extension"):
        certify_community(tiny, community, require_maximal=True)


def test_certify_result_set_disjointness(figure1):
    overlapping = ResultSet(
        [
            Community(frozenset({0, 1, 3}), 72.0, "sum", 2),
            Community(frozenset({0, 1, 3}), 72.0, "sum", 2),
        ]
    )
    with pytest.raises(CertificationError, match="non-overlapping"):
        certify_result_set(figure1, overlapping, non_overlapping=True)


def test_certify_result_set_happy_path(two_triangles):
    results = ResultSet(
        [
            Community(frozenset({3, 4, 5}), 60.0, "sum", 2),
            Community(frozenset({0, 1, 2}), 6.0, "sum", 2),
        ]
    )
    certify_result_set(two_triangles, results, k=2, non_overlapping=True)
