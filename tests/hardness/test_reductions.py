"""The Section III reduction gadgets, executed on small instances."""

import pytest

from repro.errors import ReproError
from repro.graphs.builder import graph_from_edges
from repro.hardness.reductions import (
    avg_gadget_certificate_value,
    avg_hardness_gadget,
    clique_decision_via_tic,
    inapproximability_gadget,
    sum_size_constrained_gadget,
)
from repro.influential.bruteforce import bruteforce_top_r


def _graph_with_triangle():
    # Triangle {0,1,2} plus a pendant path 2-3-4: max clique size 3.
    return graph_from_edges(
        [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)], weights=[1.0] * 5
    )


def _clique_free_graph():
    # C5: no triangle.
    return graph_from_edges(
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], weights=[1.0] * 5
    )


class TestTheorem1Gadget:
    def test_structure(self):
        gadget, hub = avg_hardness_gadget(_graph_with_triangle(), wc=100.0)
        assert gadget.n == 6
        assert gadget.degree(hub) == 5
        assert gadget.weight(hub) == 100.0
        assert all(gadget.weight(v) == 0.0 for v in range(5))

    def test_clique_detected_via_avg(self):
        # G has a 2-clique trivially and a 3-clique; use k=3 so the gadget
        # asks for a (k-1)=2... use k = q: detecting a (k-1)-clique.
        # For a 3-clique in G: k = 4? The proof: top-1 k-influential
        # community has value wc/(k+1) iff G has a (k-1)-clique.
        # Take k = 3: a 2-clique (edge) always exists -> value wc/4 ... we
        # verify the sharper case k = 4 <-> 3-clique.
        graph = _graph_with_triangle()
        gadget, hub = avg_hardness_gadget(graph, wc=100.0)
        result = bruteforce_top_r(gadget, k=3, r=1, f="avg", require_maximal=False)
        assert result.values()[0] == pytest.approx(
            avg_gadget_certificate_value(3, 100.0)
        )

    def test_no_clique_lower_value(self):
        gadget, hub = avg_hardness_gadget(_clique_free_graph(), wc=100.0)
        result = bruteforce_top_r(gadget, k=3, r=1, f="avg", require_maximal=False)
        # No triangle in C5: best community must be larger than k+1=4
        # vertices, so its average is strictly below wc/4.
        assert result.values()[0] < avg_gadget_certificate_value(3, 100.0)

    def test_weight_validation(self):
        with pytest.raises(ReproError):
            avg_hardness_gadget(_clique_free_graph(), wc=0.0)


class TestTheorem3Gadget:
    def test_value_identity(self):
        # avg(S + hub) = (|S| + |V|) * wc / (|S| + 1): the proof's anchor.
        graph = _graph_with_triangle()
        gadget, hub = inapproximability_gadget(graph, wc=2.0)
        s = {0, 1, 2}
        value = sum(gadget.weight(v) for v in s | {hub}) / (len(s) + 1)
        expected = (len(s) + graph.n) * 2.0 / (len(s) + 1)
        assert value == pytest.approx(expected)

    def test_hub_weight_is_n_wc(self):
        graph = _clique_free_graph()
        gadget, hub = inapproximability_gadget(graph, wc=3.0)
        assert gadget.weight(hub) == graph.n * 3.0

    def test_weight_validation(self):
        with pytest.raises(ReproError):
            inapproximability_gadget(_clique_free_graph(), wc=-1.0)


class TestTheorem4Gadget:
    def test_uniform_weights(self):
        gadget = sum_size_constrained_gadget(_graph_with_triangle())
        assert set(gadget.weights.tolist()) == {1.0}

    def test_clique_decision_positive(self):
        assert clique_decision_via_tic(_graph_with_triangle(), 3) is True
        assert clique_decision_via_tic(_graph_with_triangle(), 2) is True

    def test_clique_decision_negative(self):
        assert clique_decision_via_tic(_clique_free_graph(), 3) is False
        assert clique_decision_via_tic(_graph_with_triangle(), 4) is False

    def test_oversized_clique_short_circuits(self):
        assert clique_decision_via_tic(_clique_free_graph(), 99) is False

    def test_size_validation(self):
        with pytest.raises(ReproError):
            clique_decision_via_tic(_clique_free_graph(), 1)
