"""Unit tests for the cascade-peeling workspace."""

import pytest

from repro.core.kcore import kcore_of_subset
from repro.core.peeler import PeelingWorkspace
from repro.errors import VertexError
from tests.conftest import random_weighted_graph


def test_initial_core_established(tiny):
    ws = PeelingWorkspace(tiny, 3)
    assert ws.alive == {0, 1, 2, 3}
    assert len(ws) == 4
    assert 0 in ws and 5 not in ws


def test_degrees_track_alive_set(tiny):
    ws = PeelingWorkspace(tiny, 2)
    assert ws.alive == {0, 1, 2, 3, 4}
    assert ws.degree(0) == 4
    assert ws.degree(4) == 2


def test_remove_cascades(tiny):
    ws = PeelingWorkspace(tiny, 2)
    removed = ws.remove(0)
    # Removing 0 drops 4 to degree 1 -> cascade; K4 remainder {1,2,3} is
    # still a 2-core (triangle).
    assert set(removed) == {0, 4}
    assert ws.alive == {1, 2, 3}


def test_remove_all(two_triangles):
    ws = PeelingWorkspace(two_triangles, 2)
    removed = ws.remove_all([0, 3])
    # Each triangle collapses entirely once one vertex goes.
    assert set(removed) == {0, 1, 2, 3, 4, 5}
    assert len(ws) == 0


def test_remove_dead_vertex_rejected(tiny):
    ws = PeelingWorkspace(tiny, 3)
    with pytest.raises(VertexError):
        ws.remove(5)
    ws.remove(0)
    with pytest.raises(VertexError):
        ws.remove(0)


def test_component_queries(two_triangles):
    ws = PeelingWorkspace(two_triangles, 2)
    assert ws.component_of(0) == {0, 1, 2}
    comps = ws.components()
    assert [sorted(c) for c in comps] == [[0, 1, 2], [3, 4, 5]]


def test_restricted_start(tiny):
    ws = PeelingWorkspace(tiny, 2, vertices={0, 1, 2, 4})
    assert ws.alive == {0, 1, 2, 4}


def test_matches_kcore_of_subset_after_deletions():
    for seed in range(4):
        graph = random_weighted_graph(30, 0.15, seed=seed)
        ws = PeelingWorkspace(graph, 3)
        reference = set(ws.alive)
        # Delete five alive vertices (if available), mirroring on the side.
        for __ in range(5):
            if not ws.alive:
                break
            victim = min(ws.alive)
            ws.remove(victim)
            reference.discard(victim)
            reference = kcore_of_subset(graph, reference, 3)
            assert ws.alive == reference


def test_alive_neighbors(tiny):
    ws = PeelingWorkspace(tiny, 2)
    assert ws.alive_neighbors(0) == {1, 2, 3, 4}
    ws.remove(4)
    assert ws.alive_neighbors(0) == {1, 2, 3}
