"""Unit tests for the cascade-peeling workspace."""

import pytest

from repro.core.kcore import kcore_of_subset
from repro.core.peeler import PeelingWorkspace
from repro.errors import VertexError
from tests.conftest import random_weighted_graph


def test_initial_core_established(tiny):
    ws = PeelingWorkspace(tiny, 3)
    assert ws.alive == {0, 1, 2, 3}
    assert len(ws) == 4
    assert 0 in ws and 5 not in ws


def test_degrees_track_alive_set(tiny):
    ws = PeelingWorkspace(tiny, 2)
    assert ws.alive == {0, 1, 2, 3, 4}
    assert ws.degree(0) == 4
    assert ws.degree(4) == 2


def test_remove_cascades(tiny):
    ws = PeelingWorkspace(tiny, 2)
    removed = ws.remove(0)
    # Removing 0 drops 4 to degree 1 -> cascade; K4 remainder {1,2,3} is
    # still a 2-core (triangle).
    assert set(removed) == {0, 4}
    assert ws.alive == {1, 2, 3}


def test_remove_all(two_triangles):
    ws = PeelingWorkspace(two_triangles, 2)
    removed = ws.remove_all([0, 3])
    # Each triangle collapses entirely once one vertex goes.
    assert set(removed) == {0, 1, 2, 3, 4, 5}
    assert len(ws) == 0


def test_remove_dead_vertex_rejected(tiny):
    ws = PeelingWorkspace(tiny, 3)
    with pytest.raises(VertexError):
        ws.remove(5)
    ws.remove(0)
    with pytest.raises(VertexError):
        ws.remove(0)


def test_component_queries(two_triangles):
    ws = PeelingWorkspace(two_triangles, 2)
    assert ws.component_of(0) == {0, 1, 2}
    comps = ws.components()
    assert [sorted(c) for c in comps] == [[0, 1, 2], [3, 4, 5]]


def test_restricted_start(tiny):
    ws = PeelingWorkspace(tiny, 2, vertices={0, 1, 2, 4})
    assert ws.alive == {0, 1, 2, 4}


def test_matches_kcore_of_subset_after_deletions():
    for seed in range(4):
        graph = random_weighted_graph(30, 0.15, seed=seed)
        ws = PeelingWorkspace(graph, 3)
        reference = set(ws.alive)
        # Delete five alive vertices (if available), mirroring on the side.
        for __ in range(5):
            if not ws.alive:
                break
            victim = min(ws.alive)
            ws.remove(victim)
            reference.discard(victim)
            reference = kcore_of_subset(graph, reference, 3)
            assert ws.alive == reference


def test_alive_neighbors(tiny):
    ws = PeelingWorkspace(tiny, 2)
    assert ws.alive_neighbors(0) == {1, 2, 3, 4}
    ws.remove(4)
    assert ws.alive_neighbors(0) == {1, 2, 3}


@pytest.mark.parametrize("backend", ["set", "csr"])
def test_reset_reuses_workspace_across_queries(backend):
    """One workspace, many queries: reset() must leave no stale degrees."""
    graph = random_weighted_graph(30, 0.2, seed=9)
    ws = PeelingWorkspace(graph, 2, backend=backend)
    pristine_alive = set(ws.alive)
    pristine_degrees = {v: ws.degree(v) for v in ws.alive}
    # First query mutates the workspace heavily.
    while len(ws.alive) > 5:
        ws.remove(min(ws.alive))
    # Reset for a second query over the full graph: identical to a fresh
    # workspace, degree by degree.
    ws.reset()
    assert ws.alive == pristine_alive
    assert {v: ws.degree(v) for v in ws.alive} == pristine_degrees


@pytest.mark.parametrize("backend", ["set", "csr"])
def test_reset_to_subset_recomputes_degrees(backend):
    """Stale-degree regression: after a cascade shrank the alive set, a
    reset to an overlapping subset must recompute induced degrees from the
    graph, not inherit decremented counters."""
    graph = random_weighted_graph(24, 0.3, seed=4)
    ws = PeelingWorkspace(graph, 2, backend=backend)
    for __ in range(6):
        if not ws.alive:
            break
        ws.remove(min(ws.alive))
    subset = set(range(0, graph.n, 2))
    ws.reset(subset)
    fresh = PeelingWorkspace(graph, 2, vertices=subset, backend=backend)
    assert ws.alive == fresh.alive == kcore_of_subset(graph, subset, 2)
    for v in ws.alive:
        assert ws.degree(v) == fresh.degree(v)
        assert ws.alive_neighbors(v) == fresh.alive_neighbors(v)


def test_reset_validates_vertices(tiny):
    ws = PeelingWorkspace(tiny, 1)
    with pytest.raises(VertexError):
        ws.reset([0, 99])


def test_workspace_backend_property(tiny):
    assert PeelingWorkspace(tiny, 1, backend="set").backend == "set"
    assert PeelingWorkspace(tiny, 1, backend="csr").backend == "csr"
