"""Core decomposition cross-validated against networkx."""

import networkx as nx

from repro.core.decomposition import core_decomposition, core_number_histogram, kmax
from tests.conftest import random_weighted_graph


def test_tiny_graph_core_numbers(tiny):
    cores = core_decomposition(tiny)
    assert cores.tolist() == [3, 3, 3, 3, 2, 1, 1]


def test_figure1_is_2core_throughout(figure1):
    cores = core_decomposition(figure1)
    assert min(cores) == 2
    assert kmax(figure1) == 2


def test_matches_networkx_on_random_graphs():
    for seed in range(6):
        graph = random_weighted_graph(60, 0.08, seed=seed)
        g = nx.Graph()
        g.add_nodes_from(range(graph.n))
        g.add_edges_from(graph.edges())
        expected = nx.core_number(g)
        ours = core_decomposition(graph)
        assert {v: int(ours[v]) for v in range(graph.n)} == expected


def test_path_graph_cores(path_graph):
    assert core_decomposition(path_graph).tolist() == [1, 1, 1, 1, 1]


def test_empty_graph(empty_graph):
    assert core_decomposition(empty_graph).shape == (0,)
    assert kmax(empty_graph) == 0


def test_isolated_vertices_are_core_zero():
    from repro.graphs.builder import GraphBuilder

    builder = GraphBuilder(3)
    builder.add_edge(0, 1)
    cores = core_decomposition(builder.build())
    assert cores.tolist() == [1, 1, 0]


def test_histogram(tiny):
    hist = core_number_histogram(tiny)
    assert hist == {1: 2, 2: 1, 3: 4}
    assert sum(hist.values()) == tiny.n


def test_complete_graph_cores():
    from repro.graphs.builder import graph_from_edges

    k5 = graph_from_edges([(i, j) for i in range(5) for j in range(i + 1, 5)])
    assert core_decomposition(k5).tolist() == [4] * 5
    assert kmax(k5) == 4
