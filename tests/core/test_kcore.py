"""Unit tests for maximal k-core / subset k-core operations."""

import networkx as nx
import pytest

from repro.core.kcore import (
    connected_kcore_components,
    is_kcore_subset,
    kcore_of_subset,
    maximal_kcore,
)
from repro.errors import SpecError
from tests.conftest import random_weighted_graph


def test_maximal_kcore_tiny(tiny):
    assert maximal_kcore(tiny, 3) == {0, 1, 2, 3}
    assert maximal_kcore(tiny, 2) == {0, 1, 2, 3, 4}
    assert maximal_kcore(tiny, 1) == set(range(7))
    assert maximal_kcore(tiny, 4) == set()


def test_matches_networkx_k_core():
    for seed in range(4):
        graph = random_weighted_graph(50, 0.1, seed=seed)
        g = nx.Graph()
        g.add_nodes_from(range(graph.n))
        g.add_edges_from(graph.edges())
        for k in (1, 2, 3, 4):
            assert maximal_kcore(graph, k) == set(nx.k_core(g, k).nodes)


def test_kcore_of_subset_restricts(tiny):
    # Within {0,1,2,4}: degrees 0:3, 1:3, 2:2, 4:2 -> 2-core is all of them.
    assert kcore_of_subset(tiny, {0, 1, 2, 4}, 2) == {0, 1, 2, 4}
    # 3-core of that subset collapses entirely (2 and 4 drop, cascade).
    assert kcore_of_subset(tiny, {0, 1, 2, 4}, 3) == set()


def test_kcore_of_subset_cascade(path_graph):
    assert kcore_of_subset(path_graph, {0, 1, 2, 3, 4}, 2) == set()
    assert kcore_of_subset(path_graph, {0, 1, 2}, 1) == {0, 1, 2}


def test_connected_components_of_kcore(two_triangles):
    comps = connected_kcore_components(two_triangles, range(6), 2)
    assert [sorted(c) for c in comps] == [[0, 1, 2], [3, 4, 5]]
    assert connected_kcore_components(two_triangles, range(6), 3) == []


def test_components_ordered_by_smallest_member(two_triangles):
    comps = connected_kcore_components(two_triangles, range(6), 2)
    assert min(comps[0]) < min(comps[1])


def test_is_kcore_subset(tiny):
    assert is_kcore_subset(tiny, {0, 1, 2, 3}, 3)
    assert not is_kcore_subset(tiny, {0, 1, 2, 3, 4}, 3)
    assert is_kcore_subset(tiny, {0, 1, 2, 3, 4}, 2)
    assert not is_kcore_subset(tiny, set(), 1)


def test_is_kcore_does_not_require_connectivity(two_triangles):
    # Both triangles together: min degree 2 but disconnected — still "k-core"
    # by the cohesiveness-only test the strategies use.
    assert is_kcore_subset(two_triangles, {0, 1, 2, 3, 4, 5}, 2)


def test_negative_k_rejected(tiny):
    with pytest.raises(SpecError):
        maximal_kcore(tiny, -1)
    with pytest.raises(SpecError):
        kcore_of_subset(tiny, {0}, -1)
    with pytest.raises(SpecError):
        is_kcore_subset(tiny, {0}, -2)


def test_k_zero_keeps_everything(tiny):
    assert kcore_of_subset(tiny, {0, 5}, 0) == {0, 5}
