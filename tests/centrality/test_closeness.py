"""Closeness centrality cross-validated against networkx."""

import networkx as nx
import pytest

from repro.centrality.closeness import closeness_centrality
from tests.conftest import random_weighted_graph


def test_matches_networkx():
    for seed in range(3):
        graph = random_weighted_graph(25, 0.15, seed=seed)
        g = nx.Graph()
        g.add_nodes_from(range(graph.n))
        g.add_edges_from(graph.edges())
        theirs = nx.closeness_centrality(g, wf_improved=True)
        ours = closeness_centrality(graph)
        for v in range(graph.n):
            assert ours[v] == pytest.approx(theirs[v], abs=1e-9)


def test_path_center_is_most_central(path_graph):
    closeness = closeness_centrality(path_graph)
    assert closeness[2] == max(closeness)


def test_disconnected_components_scored_locally(two_triangles):
    closeness = closeness_centrality(two_triangles)
    # All six vertices are symmetric within their triangles.
    assert closeness[0] == pytest.approx(closeness[5], abs=1e-12)


def test_empty_and_singleton(empty_graph):
    assert closeness_centrality(empty_graph).shape == (0,)
