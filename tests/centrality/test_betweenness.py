"""Betweenness centrality cross-validated against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.centrality.betweenness import betweenness_centrality
from repro.errors import GraphError
from repro.graphs.builder import graph_from_edges
from tests.conftest import random_weighted_graph


def _to_nx(graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    g.add_edges_from(graph.edges())
    return g


def test_matches_networkx_exact():
    for seed in range(4):
        graph = random_weighted_graph(25, 0.15, seed=seed)
        theirs = nx.betweenness_centrality(_to_nx(graph), normalized=True)
        ours = betweenness_centrality(graph, normalized=True)
        assert np.allclose(ours, [theirs[v] for v in range(graph.n)], atol=1e-9)


def test_unnormalized_matches_networkx():
    graph = random_weighted_graph(20, 0.2, seed=7)
    theirs = nx.betweenness_centrality(_to_nx(graph), normalized=False)
    ours = betweenness_centrality(graph, normalized=False)
    assert np.allclose(ours, [theirs[v] for v in range(graph.n)], atol=1e-9)


def test_path_graph_center(path_graph):
    centrality = betweenness_centrality(path_graph)
    assert centrality[2] == max(centrality)
    assert centrality[0] == 0.0


def test_star_hub_is_one():
    star = graph_from_edges([(0, i) for i in range(1, 7)])
    centrality = betweenness_centrality(star)
    assert centrality[0] == pytest.approx(1.0)
    assert np.allclose(centrality[1:], 0.0)


def test_sampled_estimate_close():
    graph = random_weighted_graph(40, 0.15, seed=11)
    exact = betweenness_centrality(graph)
    sampled = betweenness_centrality(graph, sample_size=30, seed=1)
    # Pivots cover 3/4 of sources: the estimate tracks the exact ranking.
    top_exact = set(np.argsort(exact)[-5:])
    top_sampled = set(np.argsort(sampled)[-5:])
    assert len(top_exact & top_sampled) >= 3


def test_sample_size_validation(path_graph):
    with pytest.raises(GraphError):
        betweenness_centrality(path_graph, sample_size=0)
    with pytest.raises(GraphError):
        betweenness_centrality(path_graph, sample_size=99)


def test_tiny_graphs():
    from repro.graphs.builder import GraphBuilder

    assert betweenness_centrality(GraphBuilder(0).build()).shape == (0,)
    two = graph_from_edges([(0, 1)])
    assert np.allclose(betweenness_centrality(two), 0.0)
