"""Unit tests for citation indices (h, g, i10)."""

import numpy as np
import pytest

from repro.centrality.hindex import g_index, h_index, i10_index, index_vector


def test_h_index_canonical_cases():
    assert h_index([10, 8, 5, 4, 3]) == 4
    assert h_index([25, 8, 5, 3, 3]) == 3
    assert h_index([0, 0]) == 0
    assert h_index([]) == 0
    assert h_index([1]) == 1


def test_g_index_canonical_cases():
    # top-g papers need >= g^2 citations in total
    assert g_index([10, 8, 5, 4, 3]) == 5  # 30 >= 25
    assert g_index([1, 1, 1]) == 1
    assert g_index([]) == 0


def test_g_dominates_h():
    rng = np.random.default_rng(1)
    for __ in range(20):
        citations = rng.integers(0, 60, size=rng.integers(1, 30))
        assert g_index(citations) >= h_index(citations)


def test_i10():
    assert i10_index([12, 10, 9.9, 3]) == 2
    assert i10_index([12, 5], threshold=5) == 2
    assert i10_index([]) == 0


def test_index_vector():
    authors = [[10, 8, 5], [1, 1]]
    assert index_vector(authors, "h").tolist() == [3.0, 1.0]
    assert index_vector(authors, "i10").tolist() == [1.0, 0.0]
    with pytest.raises(ValueError):
        index_vector(authors, "zzz")
