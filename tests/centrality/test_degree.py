"""Unit tests for degree centrality."""

import numpy as np

from repro.centrality.degree import degree_centrality


def test_raw_degrees(tiny):
    raw = degree_centrality(tiny, normalized=False)
    assert raw.tolist() == [4.0, 4.0, 3.0, 3.0, 2.0, 1.0, 1.0]


def test_normalized(triangle):
    norm = degree_centrality(triangle)
    assert np.allclose(norm, [1.0, 1.0, 1.0])  # each touches both others


def test_empty(empty_graph):
    assert degree_centrality(empty_graph).shape == (0,)


def test_single_vertex():
    from repro.graphs.builder import GraphBuilder

    graph = GraphBuilder(1).build()
    assert degree_centrality(graph).tolist() == [0.0]
