"""PageRank cross-validated against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.centrality.pagerank import pagerank
from repro.errors import GraphError
from repro.graphs.builder import GraphBuilder, graph_from_edges
from tests.conftest import random_weighted_graph


def _nx_pagerank(graph, damping=0.85):
    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    g.add_edges_from(graph.edges())
    return nx.pagerank(g, alpha=damping, tol=1e-12, max_iter=500)


def test_sums_to_one(figure1):
    ranks = pagerank(figure1)
    assert ranks.sum() == pytest.approx(1.0, abs=1e-9)
    assert np.all(ranks > 0)


def test_matches_networkx_on_random_graphs():
    for seed in range(4):
        graph = random_weighted_graph(40, 0.12, seed=seed)
        ours = pagerank(graph, damping=0.85)
        theirs = _nx_pagerank(graph, damping=0.85)
        for v in range(graph.n):
            assert ours[v] == pytest.approx(theirs[v], abs=1e-7)


def test_symmetry_of_equivalent_vertices(triangle):
    ranks = pagerank(triangle)
    assert ranks[0] == pytest.approx(ranks[1], abs=1e-12)
    assert ranks[1] == pytest.approx(ranks[2], abs=1e-12)


def test_isolated_vertices_get_teleport_share():
    builder = GraphBuilder(3)
    builder.add_edge(0, 1)
    graph = builder.build()
    ranks = pagerank(graph)
    assert ranks.sum() == pytest.approx(1.0, abs=1e-9)
    assert ranks[2] > 0  # dangling vertex still holds mass


def test_star_concentrates_on_hub():
    graph = graph_from_edges([(0, i) for i in range(1, 8)])
    ranks = pagerank(graph)
    assert ranks[0] == max(ranks)
    assert ranks[0] > 3 * ranks[1]


def test_damping_validation(triangle):
    with pytest.raises(GraphError):
        pagerank(triangle, damping=1.0)
    with pytest.raises(GraphError):
        pagerank(triangle, damping=-0.1)


def test_nonconvergence_reported(triangle):
    with pytest.raises(GraphError):
        pagerank(triangle, max_iter=0)


def test_empty_graph(empty_graph):
    assert pagerank(empty_graph).shape == (0,)
