"""Integration: every numbered claim of the paper's Examples 1-2 on the
Figure 1 graph, solved through the public API."""

import pytest

from repro.graphs.generators.examples import paper_vertex_set
from repro.influential.api import top_r_communities


class TestExample1:
    def test_sum_top2(self, figure1):
        """'if the aggregation function is sum and k = 2, the top-2
        k-influential community are {v1..v11} and {v1,v2,v4,...,v11}'."""
        result = top_r_communities(figure1, k=2, r=2, f="sum")
        assert result[0].vertices == paper_vertex_set(
            "v1 v2 v3 v4 v5 v6 v7 v8 v9 v10 v11"
        )
        assert result[0].value == 203.0
        assert result[1].vertices == paper_vertex_set(
            "v1 v2 v4 v5 v6 v7 v8 v9 v10 v11"
        )

    def test_avg_top2(self, figure1):
        """'when the aggregation function is avg and k = 2, the top-2 ...
        are {v1,v2,v4} and {v6,v7,v11}'."""
        result = top_r_communities(figure1, k=2, r=2, f="avg", method="bruteforce")
        assert result[0].vertices == paper_vertex_set("v1 v2 v4")
        assert result[0].value == pytest.approx(24.0)
        assert result[1].vertices == paper_vertex_set("v6 v7 v11")
        # Paper prints 22; the printed weight multiset gives exactly 67/3.
        assert result[1].value == pytest.approx(67.0 / 3)

    def test_min_top2(self, figure1):
        """'If we change the aggregation function to min ... the top-2 ...
        become {v5,v7,v8} and {v3,v9,v10}'."""
        result = top_r_communities(figure1, k=2, r=2, f="min")
        assert result[0].vertices == paper_vertex_set("v5 v7 v8")
        assert result[1].vertices == paper_vertex_set("v3 v9 v10")

    def test_size_constrained_sum(self, figure1):
        """'We set f as sum, k = 2, and s = 4, then {v3,v6,v9,v10} is a
        size-constrained k-influential community with influence value 40.
        Although another community, {v1,...,v11}, has a higher influence
        value 203, it is not retrieved due to the size being larger.'"""
        result = top_r_communities(
            figure1, k=2, r=10, f="sum", s=4, method="exact"
        )
        by_vertices = {c.vertices: c.value for c in result}
        target = paper_vertex_set("v3 v6 v9 v10")
        assert by_vertices[target] == 40.0
        full = paper_vertex_set("v1 v2 v3 v4 v5 v6 v7 v8 v9 v10 v11")
        assert full not in by_vertices  # excluded by the size constraint


class TestExample2:
    def test_avg_top3_non_overlapping(self, figure1):
        """'The results are {v1,v2,v4}, {v6,v7,v11}, and {v3,v9,v10}' with
        values 24, ~22, 38/3, pairwise disjoint."""
        result = top_r_communities(
            figure1, k=2, r=3, f="avg", method="bruteforce", non_overlapping=True
        )
        assert [c.vertices for c in result] == [
            paper_vertex_set("v1 v2 v4"),
            paper_vertex_set("v6 v7 v11"),
            paper_vertex_set("v3 v9 v10"),
        ]
        assert result.values() == pytest.approx([24.0, 67.0 / 3, 38.0 / 3])
        assert result.is_pairwise_disjoint()

    def test_heuristic_matches_oracle_here(self, figure1):
        """The paper's local-search TONIC heuristic finds the same three
        communities on this instance (BFS order, s=4)."""
        result = top_r_communities(
            figure1, k=2, r=3, f="avg", s=4, non_overlapping=True, greedy=False
        )
        assert result.values() == pytest.approx([24.0, 67.0 / 3, 38.0 / 3])


class TestSectionIIOverlapMotivation:
    def test_three_overlapping_avg_communities_exist(self, figure1):
        """'{v6,v7,v11}, {v5,v6,v7}, and {v5,v7,v8} are all k-influential
        community ... these communities have overlaps with each other.'"""
        from repro.aggregators.average import Average
        from repro.influential.bruteforce import (
            enumerate_connected_kcores,
            is_maximal_community,
        )

        avg = Average()
        candidates = enumerate_connected_kcores(figure1, 2)
        for names in ("v6 v7 v11", "v5 v6 v7", "v5 v7 v8"):
            vertices = paper_vertex_set(names)
            assert vertices in candidates
            assert is_maximal_community(
                figure1, vertices, 2, avg, candidates=candidates
            ), names
        a = paper_vertex_set("v6 v7 v11")
        b = paper_vertex_set("v5 v6 v7")
        c = paper_vertex_set("v5 v7 v8")
        assert a & b and b & c and a & c
