"""CLI integration tests (invoking main() in-process)."""

import pytest

from repro.cli import build_parser, main


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_search_on_dataset(capsys):
    code = main(["search", "--dataset", "domainpub", "--k", "4", "--r", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "top-3 communities" in out
    assert "#1:" in out


def test_search_size_constrained_tonic(capsys):
    code = main(
        [
            "search", "--dataset", "domainpub", "--k", "4", "--r", "2",
            "--f", "avg", "--s", "10", "--tonic", "--random-strategy",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "non-overlapping" in out


def test_search_from_files(tmp_path, capsys, figure1):
    from repro.graphs.io import save_edge_list, save_weights

    edges = tmp_path / "g.txt"
    weights = tmp_path / "w.txt"
    save_edge_list(figure1, edges)
    save_weights(figure1.weights, weights)
    code = main(
        [
            "search", "--edges", str(edges), "--weights", str(weights),
            "--k", "2", "--r", "2", "--f", "sum",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "sum=203" in out


def test_search_error_reported(capsys):
    code = main(["search", "--dataset", "nope", "--k", "4"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_datasets_listing(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "friendster" in out


def test_bench_quick(tmp_path, capsys):
    out_file = tmp_path / "report.md"
    code = main(["bench", "--exp", "table3", "--quick", "--out", str(out_file)])
    assert code == 0
    assert out_file.exists()
    assert "EXPERIMENTS" in out_file.read_text()


def test_bench_unknown_exp(capsys):
    assert main(["bench", "--exp", "fig99"]) == 2


def test_casestudy(capsys):
    assert main(["casestudy"]) == 0
    out = capsys.readouterr().out
    assert "[avg]" in out


def test_parser_help_lists_subcommands():
    parser = build_parser()
    help_text = parser.format_help()
    for sub in ("search", "datasets", "bench", "casestudy"):
        assert sub in help_text
