"""CLI integration tests (invoking main() in-process)."""

import pytest

from repro.cli import build_parser, main


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_search_on_dataset(capsys):
    code = main(["search", "--dataset", "domainpub", "--k", "4", "--r", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "top-3 communities" in out
    assert "#1:" in out


def test_search_size_constrained_tonic(capsys):
    code = main(
        [
            "search", "--dataset", "domainpub", "--k", "4", "--r", "2",
            "--f", "avg", "--s", "10", "--tonic", "--random-strategy",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "non-overlapping" in out


def test_search_from_files(tmp_path, capsys, figure1):
    from repro.graphs.io import save_edge_list, save_weights

    edges = tmp_path / "g.txt"
    weights = tmp_path / "w.txt"
    save_edge_list(figure1, edges)
    save_weights(figure1.weights, weights)
    code = main(
        [
            "search", "--edges", str(edges), "--weights", str(weights),
            "--k", "2", "--r", "2", "--f", "sum",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "sum=203" in out


def test_search_error_reported(capsys):
    code = main(["search", "--dataset", "nope", "--k", "4"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_datasets_listing(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "friendster" in out


def test_bench_quick(tmp_path, capsys):
    out_file = tmp_path / "report.md"
    code = main(["bench", "--exp", "table3", "--quick", "--out", str(out_file)])
    assert code == 0
    assert out_file.exists()
    assert "EXPERIMENTS" in out_file.read_text()


def test_bench_unknown_exp(capsys):
    assert main(["bench", "--exp", "fig99"]) == 2


@pytest.fixture
def pinned_bench_clock(monkeypatch):
    """Script the grid executor's clock: real micro-graph timings are too
    noisy to gate a test on, and the CLI has no --clock flag by design."""
    import repro.bench.runner as runner_mod
    from repro.bench.clock import ManualClock

    monkeypatch.setattr(runner_mod, "perf_clock", ManualClock([0.2, 0.05]))


def test_bench_grid_run_compare_report(tmp_path, capsys, pinned_bench_clock):
    db = tmp_path / "history.sqlite"
    code = main([
        "bench", "grid", "run", "--grid", "smoke", "--db", str(db),
        "--commit", "commit-a", "--repeats", "1",
    ])
    assert code == 0
    assert "recorded run 1 of grid 'smoke'" in capsys.readouterr().out

    # First compare bootstraps (no older-commit run to judge against).
    assert main(["bench", "grid", "compare", "--db", str(db)]) == 0
    assert "bootstrap" in capsys.readouterr().out

    # A second run at another commit makes the first one the baseline.
    code = main([
        "bench", "grid", "run", "--grid", "smoke", "--db", str(db),
        "--commit", "commit-b", "--repeats", "1",
    ])
    assert code == 0
    capsys.readouterr()
    out_md = tmp_path / "compare.md"
    code = main([
        "bench", "grid", "compare", "--db", str(db), "--out", str(out_md),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "`grid:smoke` vs baseline" in out
    assert out_md.read_text().startswith("### `grid:smoke`")

    assert main(["bench", "grid", "report", "--db", str(db)]) == 0
    out = capsys.readouterr().out
    assert "Experiment-grid history" in out
    assert "commit-b" in out


def test_bench_grid_compare_against_separate_baseline_db(
    tmp_path, capsys, pinned_bench_clock
):
    baseline = tmp_path / "baseline.sqlite"
    fresh = tmp_path / "fresh.sqlite"
    for db, commit in ((baseline, "old"), (fresh, "new")):
        assert main([
            "bench", "grid", "run", "--grid", "smoke", "--db", str(db),
            "--commit", commit, "--repeats", "1",
        ]) == 0
    capsys.readouterr()
    code = main([
        "bench", "grid", "compare", "--db", str(fresh),
        "--baseline", str(baseline),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "baseline commit: `old`" in out


def test_bench_grid_rejects_unknown_grid(capsys):
    assert main(["bench", "grid", "run", "--grid", "nope"]) == 2
    assert "unknown grid" in capsys.readouterr().err


def test_casestudy(capsys):
    assert main(["casestudy"]) == 0
    out = capsys.readouterr().out
    assert "[avg]" in out


def test_parser_help_lists_subcommands():
    parser = build_parser()
    help_text = parser.format_help()
    for sub in ("search", "datasets", "bench", "casestudy"):
        assert sub in help_text


def test_batch_workload(tmp_path, capsys):
    import json

    workload = tmp_path / "wl.json"
    workload.write_text(json.dumps([
        {"k": 4, "r": 2, "f": "sum"},
        {"k": 4, "r": 2, "f": "sum"},          # duplicate: served from cache
        {"k": 6, "r": 1, "f": "min"},
        {"k": 99, "r": 2, "f": "sum"},         # above kmax: empty, no error
    ]))
    out_path = tmp_path / "results.json"
    code = main([
        "batch", "--dataset", "domainpub", "--workload", str(workload),
        "--stats", "--out", str(out_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "[4/4]" in out
    assert "queries/sec" in out
    assert '"result_cache"' in out
    payload = json.loads(out_path.read_text())
    assert len(payload) == 4
    assert payload[0]["values"] == payload[1]["values"]
    assert payload[3]["communities"] == []


def test_batch_rejects_non_array_workload(tmp_path, capsys):
    workload = tmp_path / "wl.json"
    workload.write_text('{"k": 4}')
    code = main([
        "batch", "--dataset", "domainpub", "--workload", str(workload),
    ])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_batch_requires_workload():
    with pytest.raises(SystemExit):
        main(["batch", "--dataset", "domainpub"])


def test_batch_invalid_json_reported_as_error(tmp_path, capsys):
    workload = tmp_path / "wl.json"
    workload.write_text("not json {")
    code = main([
        "batch", "--dataset", "domainpub", "--workload", str(workload),
    ])
    assert code == 2
    assert "not valid JSON" in capsys.readouterr().err
