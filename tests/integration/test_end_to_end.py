"""End-to-end scenarios across the library layers."""

import pytest

from repro.bench.datasets import get_dataset
from repro.centrality.pagerank import pagerank
from repro.graphs.generators.planted import PlantedSpec, planted_communities
from repro.hardness.certificates import certify_result_set
from repro.influential.api import top_r_communities


def test_full_pipeline_on_standin_dataset():
    """Dataset -> all solvers -> certified, mutually consistent results."""
    graph = get_dataset("domainpub")
    exact = top_r_communities(graph, k=4, r=5, f="sum", method="improved")
    naive = top_r_communities(graph, k=4, r=5, f="sum", method="naive")
    assert exact.values() == pytest.approx(naive.values())
    certify_result_set(graph, exact, k=4)

    approx = top_r_communities(graph, k=4, r=5, f="sum", method="approx", eps=0.1)
    assert approx.rth_value(5) >= (1 - 0.1) * exact.rth_value(5) - 1e-12

    for f in ("min", "max"):
        result = top_r_communities(graph, k=4, r=5, f=f)
        certify_result_set(graph, result, k=4)

    constrained = top_r_communities(graph, k=4, r=5, f="avg", s=10)
    certify_result_set(graph, constrained, k=4, s=10)


def test_planted_communities_are_found():
    """A planted heavy clique must surface as the top-1 community under
    every aggregator that rewards weight.

    Under max, the top-1 community is the maximal 4-core region around the
    heaviest vertex, which contains the whole block; under min, dropping
    the lightest block members *raises* the minimum, so the top-1 is a
    sub-clique of the block (the 5+ heaviest members)."""
    graph, planted = planted_communities(
        120,
        [PlantedSpec(size=8, weight_low=50.0, weight_high=60.0)],
        background_p=0.02,
        seed=42,
    )
    block = planted[0]
    top_max = top_r_communities(graph, k=4, r=1, f="max")
    assert block <= top_max[0].vertices
    top_min = top_r_communities(graph, k=4, r=1, f="min")
    assert top_min[0].vertices <= block
    assert len(top_min[0].vertices) >= 5  # a 4-core needs 5 vertices
    constrained = top_r_communities(graph, k=4, r=1, f="avg", s=8, greedy=True)
    assert len(constrained) == 1
    assert constrained[0].vertices <= block


def test_pagerank_weighting_pipeline():
    """Re-weighting a graph by PageRank changes which community wins."""
    graph, planted = planted_communities(
        80,
        [
            PlantedSpec(size=6, weight_low=10.0, weight_high=11.0),
            PlantedSpec(size=6, weight_low=1.0, weight_high=2.0),
        ],
        background_p=0.02,
        seed=7,
    )
    by_weight = top_r_communities(graph, k=4, r=1, f="min")
    # The min community sits inside the heavy block (see above).
    assert by_weight[0].vertices <= planted[0]

    ranked = graph.with_weights(pagerank(graph))
    result = top_r_communities(ranked, k=4, r=1, f="sum")
    certify_result_set(ranked, result, k=4)


def test_tonic_pipeline_respects_disjointness():
    graph = get_dataset("domainpub")
    for f in ("sum", "min", "max"):
        result = top_r_communities(graph, k=4, r=5, f=f, non_overlapping=True)
        assert result.is_pairwise_disjoint(), f
    local = top_r_communities(
        graph, k=4, r=5, f="avg", s=10, non_overlapping=True
    )
    assert local.is_pairwise_disjoint()


def test_weights_io_round_trip(tmp_path):
    from repro.graphs.io import (
        load_edge_list,
        load_weights,
        save_edge_list,
        save_weights,
    )

    graph = get_dataset("domainpub")
    edge_path = tmp_path / "g.txt"
    weight_path = tmp_path / "w.txt"
    save_edge_list(graph, edge_path)
    save_weights(graph.weights, weight_path)
    loaded, id_map = load_edge_list(edge_path)
    original_weights = load_weights(weight_path, graph.n)
    # load_edge_list remaps ids to first-seen order; route the weights
    # through the id map it returns.
    remapped = [0.0] * loaded.n
    for original, dense in id_map.items():
        remapped[dense] = original_weights[original]
    reloaded = loaded.with_weights(remapped)
    a = top_r_communities(graph, k=4, r=3, f="sum")
    b = top_r_communities(reloaded, k=4, r=3, f="sum")
    assert a.values() == pytest.approx(b.values())
