"""Unit tests for :mod:`repro.analytics.communities`.

Hand-computed expectations on a two-component graph: vertices 0-2 form
the heavy triangle (its own component, so reach saturates immediately),
3-5 the light one with a two-edge tail 5-6-7 (so reach grows hop by
hop), and a K4 exercises overlapping result sets.
"""

from __future__ import annotations

import pytest

from repro.analytics import community_leaders, community_summary, khop_reach
from repro.errors import SpecError
from repro.graphs.builder import graph_from_edges
from repro.influential.api import top_r_communities


@pytest.fixture
def two_triangles():
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (5, 6), (6, 7)]
    weights = [9.0, 8.0, 7.0, 3.0, 2.0, 1.0, 0.5, 0.4]
    return graph_from_edges(edges, weights=weights, n=8)


@pytest.fixture
def top2(two_triangles):
    result = top_r_communities(two_triangles, k=2, r=2, f="sum")
    assert [sorted(c.vertices) for c in result] == [[0, 1, 2], [3, 4, 5]]
    return result


def test_leaders_ranked_by_weight(two_triangles, top2):
    roster = community_leaders(two_triangles, top2, deputies=2)
    assert [entry["rank"] for entry in roster] == [1, 2]
    first = roster[0]
    assert first["community"] == [0, 1, 2]
    assert first["leader"]["vertex"] == 0 and first["leader"]["weight"] == 9.0
    assert [d["vertex"] for d in first["deputies"]] == [1, 2]
    second = roster[1]
    assert second["leader"]["vertex"] == 3
    assert second["value"] == pytest.approx(6.0)


def test_leader_ties_break_to_smaller_id():
    graph = graph_from_edges(
        [(0, 1), (1, 2), (0, 2)], weights=[5.0, 5.0, 5.0], n=3
    )
    result = top_r_communities(graph, k=2, r=1, f="sum")
    roster = community_leaders(graph, result, deputies=0)
    assert roster[0]["leader"]["vertex"] == 0
    assert roster[0]["deputies"] == []


def test_leaders_rejects_negative_deputies(two_triangles, top2):
    with pytest.raises(SpecError, match="deputies"):
        community_leaders(two_triangles, top2, deputies=-1)


def test_khop_reach_grows_then_saturates(two_triangles, top2):
    reach = khop_reach(two_triangles, top2, hops=3)
    first = reach[0]  # {0,1,2} is its whole component: flat at 3/8
    assert first["reach_pct"]["1"] == pytest.approx(round(100 * 3 / 8, 4))
    assert first["reach_pct"]["3"] == first["reach_pct"]["1"]
    assert first["reached"] == 3
    second = reach[1]  # {3,4,5} -> +6 at hop 1, +7 at hop 2, flat after
    assert second["reach_pct"]["1"] == pytest.approx(round(100 * 4 / 8, 4))
    assert second["reach_pct"]["2"] == pytest.approx(round(100 * 5 / 8, 4))
    assert second["reach_pct"]["3"] == second["reach_pct"]["2"]
    assert second["reached"] == 5


def test_khop_reach_rejects_zero_hops(two_triangles, top2):
    with pytest.raises(SpecError, match="hops"):
        khop_reach(two_triangles, top2, hops=0)


def test_summary_disjoint(two_triangles, top2):
    summary = community_summary(two_triangles, top2)
    assert summary["count"] == 2
    assert summary["sizes"] == {"min": 3, "max": 3, "mean": 3.0}
    assert summary["values"]["max"] == pytest.approx(24.0)
    assert summary["values"]["min"] == pytest.approx(6.0)
    assert summary["vertices_covered"] == 6
    assert summary["coverage_pct"] == pytest.approx(round(100 * 6 / 8, 4))
    assert summary["disjoint"] and summary["overlapping_pairs"] == []


def test_summary_reports_overlap():
    # K4 with distinct weights: the whole clique ranks first, the best
    # triangle second — sharing three vertices (Jaccard 3/4).
    k4 = graph_from_edges(
        [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        weights=[8.0, 4.0, 2.0, 1.0],
        n=4,
    )
    result = top_r_communities(k4, k=2, r=2, f="sum")
    assert len(result) == 2
    summary = community_summary(k4, result)
    assert not summary["disjoint"]
    pair = summary["overlapping_pairs"][0]
    assert pair == {"a": 1, "b": 2, "shared": 3, "jaccard": 0.75}
    assert summary["vertices_covered"] == 4


def test_empty_result_set(two_triangles):
    empty = top_r_communities(two_triangles, k=5, r=2, f="sum")
    assert len(empty) == 0
    assert community_leaders(two_triangles, empty) == []
    assert khop_reach(two_triangles, empty) == []
    summary = community_summary(two_triangles, empty)
    assert summary["count"] == 0 and summary["disjoint"]
    assert summary["values"] == {"min": None, "max": None}
