"""Property-based tests for the k-truss substrate and search."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kcore import maximal_kcore
from repro.graphs.builder import graph_from_edges
from repro.influential.truss_search import truss_min_communities
from repro.truss.decomposition import truss_decomposition
from repro.truss.ktruss import ktruss_of_subset, maximal_ktruss


@st.composite
def small_graphs(draw):
    n = draw(st.integers(3, 12))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, min_size=2, max_size=30)
    )
    weights = draw(st.lists(st.floats(0.1, 20.0), min_size=n, max_size=n))
    return graph_from_edges(edges, weights=[round(w, 2) for w in weights], n=n)


def _edge_support_within(graph, vertices, u, v):
    adj = graph.adjacency
    return len(adj[u] & adj[v] & vertices)


@given(small_graphs(), st.integers(2, 5))
@settings(max_examples=50, deadline=None)
def test_truss_edges_close_enough_triangles(graph, k):
    """Defining property: every surviving edge closes >= k-2 triangles
    inside the surviving subgraph."""
    vertices, edges = ktruss_of_subset(graph, range(graph.n), k)
    for u, v in edges:
        assert _edge_support_within(graph, vertices, u, v) >= k - 2


@given(small_graphs(), st.integers(3, 5))
@settings(max_examples=50, deadline=None)
def test_truss_inside_core(graph, k):
    """A k-truss is a subgraph of the (k-1)-core."""
    assert maximal_ktruss(graph, k) <= maximal_kcore(graph, k - 1)


@given(small_graphs(), st.integers(2, 5))
@settings(max_examples=50, deadline=None)
def test_truss_nesting(graph, k):
    """(k+1)-trusses nest inside k-trusses."""
    assert maximal_ktruss(graph, k + 1) <= maximal_ktruss(graph, k)


@given(small_graphs())
@settings(max_examples=50, deadline=None)
def test_truss_numbers_consistent_with_subset_truss(graph):
    """Edges with truss number >= k are exactly the maximal k-truss edges."""
    numbers = truss_decomposition(graph)
    for k in (3, 4):
        from_numbers = {e for e, t in numbers.items() if t >= k}
        __, from_peeling = ktruss_of_subset(graph, range(graph.n), k)
        assert from_numbers == from_peeling


@given(small_graphs(), st.integers(3, 4))
@settings(max_examples=40, deadline=None)
def test_truss_min_family_laminar_and_increasing(graph, k):
    family = truss_min_communities(graph, k)
    for a in family:
        for b in family:
            assert (
                a.vertices <= b.vertices
                or b.vertices <= a.vertices
                or not (a.vertices & b.vertices)
            )
            if a.vertices < b.vertices:
                assert a.value >= b.value


@given(small_graphs(), st.integers(3, 4))
@settings(max_examples=40, deadline=None)
def test_truss_min_communities_are_valid_trusses(graph, k):
    for community in truss_min_communities(graph, k):
        vertices, edges = ktruss_of_subset(graph, community.vertices, k)
        # The community is exactly its own k-truss (nothing peels away).
        assert vertices == set(community.vertices)
