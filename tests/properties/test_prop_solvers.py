"""Property-based tests pinning the solvers to the brute-force oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.builder import graph_from_edges
from repro.hardness.certificates import certify_result_set
from repro.influential.bruteforce import bruteforce_communities, bruteforce_top_r
from repro.influential.improved import tic_improved
from repro.influential.local_search import local_search
from repro.influential.minmax_solvers import max_communities, min_communities
from repro.influential.naive_sum import sum_naive


@st.composite
def weighted_graphs(draw, max_n=11):
    n = draw(st.integers(3, max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, min_size=2, max_size=30)
    )
    weights = draw(st.lists(st.floats(0.1, 20.0), min_size=n, max_size=n))
    return graph_from_edges(edges, weights=[round(w, 2) for w in weights], n=n)


@given(weighted_graphs(), st.integers(1, 3), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_improved_exact_matches_oracle(graph, k, r):
    ours = tic_improved(graph, k, r, eps=0.0)
    oracle = bruteforce_top_r(graph, k, r, "sum")
    assert np.allclose(ours.values(), oracle.values())


@given(weighted_graphs(), st.integers(1, 3), st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_naive_matches_oracle(graph, k, r):
    ours = sum_naive(graph, k, r)
    oracle = bruteforce_top_r(graph, k, r, "sum")
    assert np.allclose(ours.values(), oracle.values())


@given(
    weighted_graphs(),
    st.integers(1, 3),
    st.integers(1, 4),
    st.sampled_from([0.05, 0.2, 0.5]),
)
@settings(max_examples=40, deadline=None)
def test_theorem6_bound_holds(graph, k, r, eps):
    exact = bruteforce_top_r(graph, k, r, "sum")
    approx = tic_improved(graph, k, r, eps=eps)
    if not len(exact):
        return
    assert len(approx) >= len(exact)
    got = approx.rth_value(len(exact))
    want = exact.rth_value(len(exact))
    assert got >= (1 - eps) * want - 1e-9


@given(weighted_graphs(), st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_min_solver_matches_oracle_family(graph, k):
    ours = {(c.vertices, c.value) for c in min_communities(graph, k)}
    oracle = {
        (c.vertices, c.value) for c in bruteforce_communities(graph, k, "min")
    }
    assert ours == oracle


@given(weighted_graphs(), st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_max_solver_matches_oracle_family(graph, k):
    ours = {(c.vertices, c.value) for c in max_communities(graph, k)}
    oracle = {
        (c.vertices, c.value) for c in bruteforce_communities(graph, k, "max")
    }
    assert ours == oracle


@given(
    weighted_graphs(),
    st.integers(1, 3),
    st.sampled_from(["sum", "avg"]),
    st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_local_search_outputs_always_certify(graph, k, f, greedy):
    s = k + 2
    if s > graph.n:
        return
    result = local_search(graph, k, 3, s, f, greedy=greedy)
    certify_result_set(graph, result, k=k, s=s)


@given(weighted_graphs(), st.integers(1, 3), st.booleans())
@settings(max_examples=40, deadline=None)
def test_tonic_local_search_disjoint(graph, k, greedy):
    s = k + 2
    if s > graph.n:
        return
    result = local_search(
        graph, k, 3, s, "avg", greedy=greedy, non_overlapping=True
    )
    assert result.is_pairwise_disjoint()
    certify_result_set(graph, result, k=k, s=s, non_overlapping=True)


@given(weighted_graphs(), st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_local_search_never_beats_exact(graph, k):
    """The heuristic is an under-approximation: its best value can never
    exceed the exhaustive optimum."""
    s = k + 2
    if s > graph.n:
        return
    heuristic = local_search(graph, k, 1, s, "sum", greedy=True)
    exact = bruteforce_top_r(graph, k, 1, "sum", s=s, require_maximal=False)
    if len(heuristic) and len(exact):
        assert heuristic.values()[0] <= exact.values()[0] + 1e-9
