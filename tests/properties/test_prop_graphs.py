"""Property-based tests for graph construction and generators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.centrality.pagerank import pagerank
from repro.graphs.builder import graph_from_edges
from repro.graphs.generators.random_graphs import (
    gnm_random_graph,
    powerlaw_configuration_model,
)
from repro.graphs.validation import validate_graph


@st.composite
def edge_lists(draw):
    n = draw(st.integers(2, 20))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=60))
    return n, edges


@given(edge_lists())
def test_builder_output_always_validates(case):
    n, edges = case
    graph = graph_from_edges(edges, n=n)
    validate_graph(graph)
    assert graph.m == len(set(edges))
    assert int(graph.degrees().sum()) == 2 * graph.m


@given(st.integers(2, 40), st.integers(0, 60), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_gnm_generator_properties(n, m, seed):
    m = min(m, n * (n - 1) // 2)
    graph = gnm_random_graph(n, m, seed=seed)
    validate_graph(graph)
    assert graph.m == m


@given(st.integers(10, 120), st.floats(2.1, 2.9), st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_configuration_model_validates(n, gamma, seed):
    graph = powerlaw_configuration_model(n, gamma, d_min=1, seed=seed)
    validate_graph(graph)
    assert graph.n == n


@given(edge_lists())
@settings(max_examples=30, deadline=None)
def test_pagerank_is_a_distribution(case):
    n, edges = case
    graph = graph_from_edges(edges, n=n)
    ranks = pagerank(graph)
    assert ranks.sum() == np.float64(1.0) or abs(ranks.sum() - 1.0) < 1e-8
    assert np.all(ranks > 0)
