"""Cache-coherence property of the serving layer.

The invariant: after ANY interleaving of submits, weight updates and
explicit invalidations, a served answer equals a cold
:func:`~repro.influential.api.top_r_communities` run against the
service's *current* graph — the caches may never leak a stale or
foreign result.  Hypothesis drives random graphs, random operation
sequences, and mixed backends through one model-based check.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.builder import graph_from_edges
from repro.influential.api import top_r_communities
from repro.serving import InfluentialQuery, QueryService

AGGREGATORS = ("sum", "sum-surplus(1)", "min", "max", "avg")


@st.composite
def weighted_graphs(draw, min_n=4, max_n=12, max_edges=30):
    n = draw(st.integers(min_n, max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=max_edges)
    )
    weights = draw(
        st.lists(st.floats(0.1, 20.0), min_size=n, max_size=n)
    )
    return graph_from_edges(edges, weights=weights, n=n)


@st.composite
def queries(draw):
    return InfluentialQuery(
        k=draw(st.integers(1, 5)),
        r=draw(st.integers(1, 4)),
        f=draw(st.sampled_from(AGGREGATORS)),
        eps=draw(st.sampled_from([0.0, 0.25])),
        backend=draw(st.sampled_from(["auto", "set", "csr"])),
    )


@st.composite
def operations(draw, n):
    kind = draw(st.sampled_from(["submit", "submit", "submit",
                                 "reweight", "invalidate"]))
    if kind == "submit":
        return ("submit", draw(queries()))
    if kind == "reweight":
        seed = draw(st.integers(0, 2**16))
        weights = np.round(
            np.random.default_rng(seed).uniform(0.1, 20.0, n), 4
        )
        return ("reweight", weights)
    return ("invalidate", draw(st.one_of(st.none(), st.integers(1, 5))))


@st.composite
def serving_scenarios(draw):
    graph = draw(weighted_graphs())
    ops = draw(st.lists(operations(graph.n), min_size=1, max_size=8))
    return graph, ops


@given(serving_scenarios())
@settings(max_examples=40, deadline=None)
def test_interleaved_operations_match_cold_runs(scenario):
    graph, ops = scenario
    service = QueryService(graph, cache_size=4)  # tiny: force evictions too
    current = graph
    for kind, payload in ops:
        if kind == "submit":
            served = service.submit(payload)
            cold = top_r_communities(
                current,
                backend=payload.backend,
                **payload.solver_kwargs(),
            )
            assert served == cold
            assert served.values() == cold.values()
        elif kind == "reweight":
            service.update_weights(payload)
            current = current.with_weights(payload)
        else:
            service.invalidate(k=payload)
    assert service.graph.weights.tolist() == current.weights.tolist()


@given(weighted_graphs(), st.lists(queries(), min_size=1, max_size=6))
@settings(max_examples=25, deadline=None)
def test_batches_match_per_query_submission(graph, workload):
    batched = QueryService(graph).submit_many(workload + workload)
    solo = QueryService(graph)
    expected = [solo.submit(query) for query in workload] * 2
    # Order-preserving, duplicate-consistent, equal to per-query serving.
    assert [r.vertex_sets() for r in batched] == (
        [r.vertex_sets() for r in expected]
    )
    assert [r.values() for r in batched] == [r.values() for r in expected]
