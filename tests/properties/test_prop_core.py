"""Property-based tests for the k-core machinery."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import core_decomposition
from repro.core.kcore import (
    connected_kcore_components,
    kcore_of_subset,
    maximal_kcore,
)
from repro.core.peeler import PeelingWorkspace
from repro.graphs.builder import graph_from_edges


@st.composite
def small_graphs(draw):
    n = draw(st.integers(2, 14))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=40))
    weights = draw(
        st.lists(
            st.floats(0.1, 50.0), min_size=n, max_size=n
        )
    )
    return graph_from_edges(edges, weights=weights, n=n)


@given(small_graphs())
@settings(max_examples=60, deadline=None)
def test_core_numbers_match_networkx(graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    g.add_edges_from(graph.edges())
    expected = nx.core_number(g)
    ours = core_decomposition(graph)
    assert {v: int(c) for v, c in enumerate(ours)} == expected


@given(small_graphs(), st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_kcore_invariants(graph, k):
    core = maximal_kcore(graph, k)
    adj = graph.adjacency
    # Cohesive: every member has >= k neighbours inside.
    assert all(len(adj[v] & core) >= k for v in core)
    # Idempotent: re-coring changes nothing.
    assert kcore_of_subset(graph, core, k) == core
    # Nested: the (k+1)-core is contained in the k-core.
    assert maximal_kcore(graph, k + 1) <= core


@given(small_graphs(), st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_kcore_is_maximal(graph, k):
    """No vertex outside the k-core can be added back: any superset that is
    cohesive must already be inside."""
    core = maximal_kcore(graph, k)
    adj = graph.adjacency
    for v in range(graph.n):
        if v in core:
            continue
        extended = core | {v}
        # v must fail the degree bound in the extension (otherwise the
        # "maximal" claim of Definition 1 would be violated).
        assert len(adj[v] & extended) < k


@given(small_graphs(), st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_components_partition_the_core(graph, k):
    components = connected_kcore_components(graph, range(graph.n), k)
    union: set[int] = set()
    for comp in components:
        assert not (union & comp)  # disjoint
        union |= comp
    assert union == maximal_kcore(graph, k)


@given(small_graphs(), st.integers(1, 4), st.data())
@settings(max_examples=60, deadline=None)
def test_peeler_matches_recompute(graph, k, data):
    ws = PeelingWorkspace(graph, k)
    reference = set(ws.alive)
    assert reference == maximal_kcore(graph, k)
    for __ in range(3):
        if not ws.alive:
            break
        victim = data.draw(st.sampled_from(sorted(ws.alive)))
        ws.remove(victim)
        reference.discard(victim)
        reference = kcore_of_subset(graph, reference, k)
        assert ws.alive == reference
