"""Cache coherence under *topology* churn.

PR 3's property suite pinned the serving caches under weight updates;
this one adds edge updates to the mix.  The invariant is the same and
stronger: after ANY interleaving of edge updates, weight updates and
submits, a served answer equals a cold
:func:`~repro.influential.api.top_r_communities` run against a graph
rebuilt *from scratch* out of the model's current edge set — scoped
invalidation, patched CSR arrays and incrementally repaired core numbers
may never leak a stale result.  Both service backends are driven (the
"set" service applies deltas through the slow oracle path), and the
final core numbers are checked against a full decomposition.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import core_decomposition
from repro.graphs.builder import graph_from_edges
from repro.influential.api import top_r_communities
from repro.serving import InfluentialQuery, QueryService

AGGREGATORS = ("sum", "sum-surplus(1)", "min", "max", "avg")


@st.composite
def queries(draw):
    return InfluentialQuery(
        k=draw(st.integers(1, 5)),
        r=draw(st.integers(1, 4)),
        f=draw(st.sampled_from(AGGREGATORS)),
        eps=draw(st.sampled_from([0.0, 0.25])),
        backend=draw(st.sampled_from(["auto", "set", "csr"])),
    )


@st.composite
def update_scenarios(draw):
    n = draw(st.integers(4, 10))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    initial = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=20)
    )
    weights = draw(st.lists(st.floats(0.1, 20.0), min_size=n, max_size=n))
    ops = draw(
        st.lists(
            st.sampled_from(["submit", "submit", "edges", "edges", "reweight"]),
            min_size=1,
            max_size=8,
        )
    )
    seeds = draw(
        st.lists(
            st.integers(0, 2**16), min_size=len(ops), max_size=len(ops)
        )
    )
    query_pool = draw(st.lists(queries(), min_size=1, max_size=4))
    backend = draw(st.sampled_from(["set", "csr"]))
    return n, initial, weights, ops, seeds, query_pool, backend


@given(update_scenarios())
@settings(max_examples=40, deadline=None)
def test_interleaved_edge_updates_match_cold_rebuilds(scenario):
    n, initial, weights, ops, seeds, query_pool, backend = scenario
    edges = set(initial)
    weights = np.asarray(weights)
    service = QueryService(
        graph_from_edges(sorted(edges), weights=weights, n=n),
        backend=backend,
        cache_size=4,  # tiny: force evictions alongside invalidations
    )
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    for op, seed in zip(ops, seeds):
        rng = np.random.default_rng(seed)
        if op == "submit":
            query = query_pool[seed % len(query_pool)]
            served = service.submit(query)
            cold = top_r_communities(
                graph_from_edges(sorted(edges), weights=weights, n=n),
                backend=query.backend,
                **query.solver_kwargs(),
            )
            assert served == cold
            assert served.values() == cold.values()
        elif op == "edges":
            absent = [edge for edge in possible if edge not in edges]
            present = sorted(edges)
            insert = (
                [absent[rng.integers(len(absent))]] if absent else []
            )
            delete = (
                [present[rng.integers(len(present))]] if present else []
            )
            if not insert and not delete:
                continue
            service.update_edges(insert=insert, delete=delete)
            edges |= set(insert)
            edges -= set(delete)
        else:
            weights = np.round(rng.uniform(0.1, 20.0, n), 4)
            service.update_weights(weights)
    rebuilt = graph_from_edges(sorted(edges), weights=weights, n=n)
    assert service.graph.m == rebuilt.m
    assert np.array_equal(
        service.core_numbers, core_decomposition(rebuilt, backend="set")
    )
    assert service.graph.weights.tolist() == rebuilt.weights.tolist()


@given(update_scenarios())
@settings(max_examples=15, deadline=None)
def test_truss_serving_survives_edge_churn(scenario):
    n, initial, weights, ops, seeds, __, backend = scenario
    edges = set(initial)
    service = QueryService(
        graph_from_edges(sorted(edges), weights=weights, n=n),
        backend=backend,
    )
    truss_query = InfluentialQuery(k=2, r=2, f="sum", cohesion="truss")
    service.submit(truss_query)  # warm the truss cache, then churn it
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    for op, seed in zip(ops, seeds):
        if op != "edges":
            continue
        rng = np.random.default_rng(seed)
        absent = [edge for edge in possible if edge not in edges]
        present = sorted(edges)
        insert = [absent[rng.integers(len(absent))]] if absent else []
        delete = [present[rng.integers(len(present))]] if present else []
        if not insert and not delete:
            continue
        service.update_edges(insert=insert, delete=delete)
        edges |= set(insert)
        edges -= set(delete)
        served = service.submit(truss_query)
        cold = QueryService(
            graph_from_edges(sorted(edges), weights=weights, n=n),
            backend=backend,
        ).submit(truss_query)
        assert served == cold
        assert served.values() == cold.values()
