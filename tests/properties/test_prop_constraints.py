"""Property-based pinning of label-constrained search.

On random weighted graphs with random label assignments, a constrained
solve must equal the post-filtered brute force (enumerate every connected
k-core of the full graph, keep the all-matching ones, rank) — on both
backends, for both the pushdown fast path (sum) and the induced-subgraph
fallback (min).  Hypothesis loves to shrink weights to equal floats, so
the pin is tie-aware: the produced value ranking must match the deep
oracle ranking exactly, and every produced community must appear in the
oracle's catalogue at its claimed value — under distinct values this
degenerates to set-for-set equality.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.builder import graph_from_edges
from repro.influential.api import top_r_communities
from repro.influential.constraints import LabelPredicate
from repro.serving.oracle import bruteforce_constrained_top_r

LABELS = ("g:db", "g:ml", "x:sys")


@st.composite
def labeled_graphs(draw, min_n=2, max_n=12, max_edges=30):
    n = draw(st.integers(min_n, max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=max_edges)
    )
    weights = draw(st.lists(st.floats(0.1, 50.0), min_size=n, max_size=n))
    labels = draw(
        st.lists(st.sampled_from(LABELS), min_size=n, max_size=n)
    )
    graph = graph_from_edges(edges, weights=weights, n=n)
    return graph.with_labels(labels)


@st.composite
def predicates(draw):
    kind = draw(st.sampled_from(("eq", "any", "prefix")))
    if kind == "eq":
        return LabelPredicate.from_json(draw(st.sampled_from(LABELS)))
    if kind == "any":
        chosen = draw(
            st.lists(st.sampled_from(LABELS), min_size=1, max_size=3)
        )
        return LabelPredicate.from_json({"any": chosen})
    return LabelPredicate.from_json({"prefix": draw(st.sampled_from(("g:", "x:")))})


def _close(a, b):
    return abs(a - b) <= 1e-9 * max(1.0, abs(a), abs(b))


def _pin(graph, k, r, f, predicate):
    # Enumerate well past r so equal-valued communities at the cut line
    # are all in the catalogue, whichever one the solver kept.
    deep = bruteforce_constrained_top_r(graph, k, 64, f, predicate)
    catalogue = dict(zip(deep.vertex_sets(), deep.values()))
    for backend in ("set", "csr"):
        produced = top_r_communities(
            graph, k, r, f, backend=backend, labels=predicate
        )
        assert len(produced) == min(r, len(deep))
        for a, b in zip(produced.values(), deep.values()):
            assert _close(a, b), f"{backend}: {produced.values()} != top of {deep.values()}"
        seen = produced.vertex_sets()
        assert len(set(seen)) == len(seen)
        for members, value in zip(seen, produced.values()):
            assert members in catalogue, f"{backend}: {set(members)} not a community"
            assert _close(value, catalogue[members])


@given(labeled_graphs(), st.integers(1, 3), st.integers(1, 3), predicates())
@settings(max_examples=60, deadline=None)
def test_constrained_sum_matches_postfilter(graph, k, r, predicate):
    """The pushdown path: masked peel on the global CSR."""
    _pin(graph, k, r, "sum", predicate)


@given(labeled_graphs(), st.integers(1, 3), st.integers(1, 2), predicates())
@settings(max_examples=40, deadline=None)
def test_constrained_min_matches_postfilter(graph, k, r, predicate):
    """The induced-subgraph fallback: min peel runs on the remapped graph."""
    _pin(graph, k, r, "min", predicate)


@given(labeled_graphs(), st.integers(1, 3), predicates())
@settings(max_examples=40, deadline=None)
def test_constrained_members_always_match(graph, k, predicate):
    names = graph.labels
    result = top_r_communities(graph, k, 3, "sum", labels=predicate)
    for community in result:
        assert all(predicate.matches(names[v]) for v in community.vertices)
