"""Property-based tests for the utility data structures."""

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.heaps import IndexedMaxHeap, LazyMaxHeap
from repro.utils.sortedlist import SortedMultiset
from repro.utils.stats import IncrementalStats, SubsetStats
from repro.utils.topr import TopR
from repro.utils.zobrist import ZobristHasher


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
def test_indexed_heap_pops_sorted(values):
    heap = IndexedMaxHeap()
    for i, v in enumerate(values):
        heap.push(i, v)
    popped = [heap.pop()[1] for __ in range(len(values))]
    assert popped == sorted(values, reverse=True)


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1),
    st.data(),
)
def test_indexed_heap_random_removals(values, data):
    heap = IndexedMaxHeap()
    for i, v in enumerate(values):
        heap.push(i, v)
    alive = dict(enumerate(values))
    removals = data.draw(
        st.lists(st.sampled_from(sorted(alive)), unique=True, max_size=len(alive))
    )
    for item in removals:
        heap.remove(item)
        del alive[item]
    popped = [heap.pop()[1] for __ in range(len(heap))]
    assert popped == sorted(alive.values(), reverse=True)


@given(st.lists(st.tuples(st.floats(0, 100), st.integers()), min_size=1))
def test_lazy_heap_max_invariant(entries):
    heap: LazyMaxHeap[int] = LazyMaxHeap()
    for priority, payload in entries:
        heap.push(priority, payload)
    top_priority, __ = heap.pop()
    assert top_priority == max(p for p, __ in entries)


@given(st.lists(st.floats(0, 1000), min_size=1), st.integers(1, 10))
def test_topr_equals_sorted_prefix(values, r):
    top: TopR[float] = TopR(r, key=lambda v: v)
    top.offer_all(values)
    assert top.ranked() == sorted(values, reverse=True)[:r]


@given(st.lists(st.floats(0, 1000), min_size=1), st.integers(1, 10))
def test_topr_threshold_is_rth(values, r):
    top: TopR[float] = TopR(r, key=lambda v: v)
    top.offer_all(values)
    if len(values) >= r:
        assert top.threshold() == sorted(values, reverse=True)[r - 1]
    else:
        assert top.threshold() == float("-inf")


@given(st.lists(st.floats(0, 100)))
def test_sorted_multiset_matches_sorted_list(values):
    ms = SortedMultiset()
    for v in values:
        ms.add(v)
    assert list(ms) == sorted(values)


@given(
    st.lists(
        st.tuples(st.booleans(), st.sampled_from([1.0, 2.0, 3.0, 5.0])),
        max_size=50,
    )
)
def test_incremental_stats_equals_recompute(ops):
    inc = IncrementalStats()
    reference: list[float] = []
    for add, value in ops:
        if add or not reference:
            inc.add(value)
            reference.append(value)
        else:
            victim = reference.pop()
            inc.remove(victim)
    assert inc.snapshot() == SubsetStats.of(reference)


@given(st.sets(st.integers(0, 63)), st.sets(st.integers(0, 63)))
def test_zobrist_symmetric_difference(a, b):
    hasher = ZobristHasher(64)
    assert hasher.hash_set(a) ^ hasher.hash_set(b) == hasher.hash_set(
        a.symmetric_difference(b)
    )
