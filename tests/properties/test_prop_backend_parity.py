"""Property-based parity between the set and CSR graph backends.

Every hot kernel has two implementations (see ``repro.graphs.backend``);
on random graphs they must return *identical* results — not merely
equivalent ones — because solvers layered on top are deterministic
functions of the kernel outputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregators.registry import get_aggregator
from repro.core.decomposition import core_decomposition
from repro.core.kcore import (
    connected_kcore_components,
    kcore_of_subset,
    maximal_kcore,
)
from repro.core.peeler import PeelingWorkspace
from repro.graphs.builder import graph_from_edges
from repro.graphs.components import connected_components_of
from repro.influential.api import top_r_communities
from repro.influential.expansion import expansion_context, members_frozenset
from repro.truss.decomposition import edge_supports, truss_decomposition
from repro.utils.zobrist import ZobristHasher

AGGREGATORS = ("sum", "avg", "min", "max")


@st.composite
def weighted_graphs(draw, min_n=2, max_n=16, max_edges=48):
    n = draw(st.integers(min_n, max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=max_edges)
    )
    weights = draw(st.lists(st.floats(0.1, 50.0), min_size=n, max_size=n))
    return graph_from_edges(edges, weights=weights, n=n)


@given(weighted_graphs())
@settings(max_examples=60, deadline=None)
def test_core_decomposition_parity(graph):
    assert np.array_equal(
        core_decomposition(graph, backend="set"),
        core_decomposition(graph, backend="csr"),
    )


@given(weighted_graphs(), st.integers(0, 5), st.data())
@settings(max_examples=60, deadline=None)
def test_kcore_of_subset_parity(graph, k, data):
    subset = data.draw(
        st.lists(st.integers(0, graph.n - 1), unique=True, max_size=graph.n)
    )
    assert kcore_of_subset(graph, subset, k, backend="set") == kcore_of_subset(
        graph, subset, k, backend="csr"
    )
    assert maximal_kcore(graph, k, backend="set") == maximal_kcore(
        graph, k, backend="csr"
    )


@given(weighted_graphs())
@settings(max_examples=60, deadline=None)
def test_truss_parity(graph):
    assert edge_supports(graph, backend="set") == edge_supports(
        graph, backend="csr"
    )
    assert truss_decomposition(graph, backend="set") == truss_decomposition(
        graph, backend="csr"
    )


@given(weighted_graphs(min_n=5), st.integers(1, 3), st.integers(1, 3))
@settings(max_examples=50, deadline=None)
def test_top_r_parity(graph, k, r):
    for f in AGGREGATORS:
        assert top_r_communities(
            graph, k, r, f=f, backend="set"
        ) == top_r_communities(graph, k, r, f=f, backend="csr"), f


@given(weighted_graphs(), st.integers(0, 4), st.data())
@settings(max_examples=60, deadline=None)
def test_connected_components_parity(graph, k, data):
    subset = data.draw(
        st.lists(st.integers(0, graph.n - 1), unique=True, max_size=graph.n)
    )
    assert connected_components_of(
        graph, subset, backend="set"
    ) == connected_components_of(graph, subset, backend="csr")


@given(weighted_graphs(min_n=4), st.integers(1, 3), st.sampled_from(
    ["sum", "sum-surplus(alpha=2)", "avg"]
))
@settings(max_examples=50, deadline=None)
def test_expansion_children_parity(graph, k, f):
    """The two expansion engines must emit *identical* children — same
    vertex sets, bit-identical values, equal Zobrist keys — for every
    removal, both per vertex and through the batched ``expand`` pass."""
    aggregator = get_aggregator(f)
    hasher = ZobristHasher(graph.n)
    for component in connected_kcore_components(graph, range(graph.n), k):
        value = aggregator.value(graph, frozenset(component))
        contexts = {
            backend: expansion_context(
                graph, frozenset(component), k, aggregator, value,
                hasher, backend=backend,
            )
            for backend in ("set", "csr")
        }
        for vertex in sorted(component):
            flattened = {}
            for backend, ctx in contexts.items():
                flattened[backend] = [
                    (members_frozenset(child.vertices), child.value, child.key)
                    for child in ctx.children_after_removal(vertex)
                ]
            assert flattened["set"] == flattened["csr"], (vertex, k, f)
        batches = {
            backend: [
                (members_frozenset(child.vertices), child.value, child.key)
                for child in ctx.expand()
            ]
            for backend, ctx in contexts.items()
        }
        assert batches["set"] == batches["csr"], (k, f)


@given(weighted_graphs(min_n=4), st.integers(1, 3),
       st.floats(0.0, 0.99), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_expansion_floor_parity(graph, k, rel_floor, r):
    """A value floor (static or callable) prunes identically on both
    engines, and never prunes a child a floorless expansion would keep
    above the floor."""
    aggregator = get_aggregator("sum")
    hasher = ZobristHasher(graph.n)
    for component in connected_kcore_components(graph, range(graph.n), k):
        value = aggregator.value(graph, frozenset(component))
        floor = rel_floor * value
        results = {}
        for backend in ("set", "csr"):
            ctx = expansion_context(
                graph, frozenset(component), k, aggregator, value,
                hasher, backend=backend,
            )
            results[backend] = [
                (members_frozenset(c.vertices), c.value, c.key)
                for c in ctx.expand(floor)
            ]
            callable_children = [
                (members_frozenset(c.vertices), c.value, c.key)
                for c in expansion_context(
                    graph, frozenset(component), k, aggregator, value,
                    hasher, backend=backend,
                ).expand(lambda: floor)
            ]
            assert callable_children == results[backend], backend
        assert results["set"] == results["csr"]
        # Conservativeness: the floor may generate extra children below it
        # (it prunes on the min_removal_loss bound, not exact values) but
        # must never drop one at-or-above it.
        unfiltered = [
            (members_frozenset(c.vertices), c.value, c.key)
            for c in expansion_context(
                graph, frozenset(component), k, aggregator, value, hasher,
                backend="csr",
            ).expand()
        ]
        floored = set(results["csr"])
        assert floored <= set(unfiltered)
        for child in unfiltered:
            if child[1] >= floor:
                assert child in floored, child


@given(weighted_graphs(), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_peeling_workspace_parity(graph, k):
    ws_set = PeelingWorkspace(graph, k, backend="set")
    ws_csr = PeelingWorkspace(graph, k, backend="csr")
    assert ws_set.alive == ws_csr.alive
    while ws_csr.alive:
        v = min(ws_csr.alive)
        assert ws_set.degree(v) == ws_csr.degree(v)
        assert ws_set.alive_neighbors(v) == ws_csr.alive_neighbors(v)
        assert set(ws_set.remove(v)) == set(ws_csr.remove(v))
        assert ws_set.alive == ws_csr.alive
        assert ws_set.components() == ws_csr.components()
