"""Property-based parity between the set and CSR graph backends.

Every hot kernel has two implementations (see ``repro.graphs.backend``);
on random graphs they must return *identical* results — not merely
equivalent ones — because solvers layered on top are deterministic
functions of the kernel outputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import core_decomposition
from repro.core.kcore import kcore_of_subset, maximal_kcore
from repro.core.peeler import PeelingWorkspace
from repro.graphs.builder import graph_from_edges
from repro.influential.api import top_r_communities
from repro.truss.decomposition import edge_supports, truss_decomposition

AGGREGATORS = ("sum", "avg", "min", "max")


@st.composite
def weighted_graphs(draw, min_n=2, max_n=16, max_edges=48):
    n = draw(st.integers(min_n, max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=max_edges)
    )
    weights = draw(st.lists(st.floats(0.1, 50.0), min_size=n, max_size=n))
    return graph_from_edges(edges, weights=weights, n=n)


@given(weighted_graphs())
@settings(max_examples=60, deadline=None)
def test_core_decomposition_parity(graph):
    assert np.array_equal(
        core_decomposition(graph, backend="set"),
        core_decomposition(graph, backend="csr"),
    )


@given(weighted_graphs(), st.integers(0, 5), st.data())
@settings(max_examples=60, deadline=None)
def test_kcore_of_subset_parity(graph, k, data):
    subset = data.draw(
        st.lists(st.integers(0, graph.n - 1), unique=True, max_size=graph.n)
    )
    assert kcore_of_subset(graph, subset, k, backend="set") == kcore_of_subset(
        graph, subset, k, backend="csr"
    )
    assert maximal_kcore(graph, k, backend="set") == maximal_kcore(
        graph, k, backend="csr"
    )


@given(weighted_graphs())
@settings(max_examples=60, deadline=None)
def test_truss_parity(graph):
    assert edge_supports(graph, backend="set") == edge_supports(
        graph, backend="csr"
    )
    assert truss_decomposition(graph, backend="set") == truss_decomposition(
        graph, backend="csr"
    )


@given(weighted_graphs(min_n=5), st.integers(1, 3), st.integers(1, 3))
@settings(max_examples=50, deadline=None)
def test_top_r_parity(graph, k, r):
    for f in AGGREGATORS:
        assert top_r_communities(
            graph, k, r, f=f, backend="set"
        ) == top_r_communities(graph, k, r, f=f, backend="csr"), f


@given(weighted_graphs(), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_peeling_workspace_parity(graph, k):
    ws_set = PeelingWorkspace(graph, k, backend="set")
    ws_csr = PeelingWorkspace(graph, k, backend="csr")
    assert ws_set.alive == ws_csr.alive
    while ws_csr.alive:
        v = min(ws_csr.alive)
        assert ws_set.degree(v) == ws_csr.degree(v)
        assert ws_set.alive_neighbors(v) == ws_csr.alive_neighbors(v)
        assert set(ws_set.remove(v)) == set(ws_csr.remove(v))
        assert ws_set.alive == ws_csr.alive
        assert ws_set.components() == ws_csr.components()
