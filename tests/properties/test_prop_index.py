"""Index coherence under churn: every served answer equals a cold rebuild.

The strongest statement PR 6 makes: with an :class:`InfluentialIndex`
enabled, ANY interleaving of edge updates, weight updates and indexed
queries yields answers byte-identical to cold
:func:`~repro.influential.api.top_r_communities` runs against a graph
rebuilt from scratch out of the model's current state — the locality
bound, the lazy re-captures and the boundary-tie fallbacks may never
leak a stale or re-ordered ranking.  Mirrors
``test_prop_updates.py`` but drives the indexed dispatch path.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.builder import graph_from_edges
from repro.influential.api import top_r_communities
from repro.serving import InfluentialQuery, QueryService

INDEXED = ("sum", "sum-surplus(1)")


@st.composite
def indexed_queries(draw):
    return InfluentialQuery(
        k=draw(st.integers(1, 5)),
        r=draw(st.integers(1, 4)),
        f=draw(st.sampled_from(INDEXED)),
        method=draw(st.sampled_from(["auto", "improved"])),
    )


@st.composite
def index_scenarios(draw):
    n = draw(st.integers(4, 10))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    initial = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=20)
    )
    weights = draw(st.lists(st.floats(0.1, 20.0), min_size=n, max_size=n))
    ops = draw(
        st.lists(
            st.sampled_from(["submit", "submit", "edges", "reweight"]),
            min_size=1,
            max_size=8,
        )
    )
    seeds = draw(
        st.lists(st.integers(0, 2**16), min_size=len(ops), max_size=len(ops))
    )
    query_pool = draw(st.lists(indexed_queries(), min_size=1, max_size=4))
    depth = draw(st.integers(1, 5))
    return n, initial, weights, ops, seeds, query_pool, depth


@given(index_scenarios())
@settings(max_examples=40, deadline=None)
def test_indexed_answers_survive_interleaved_churn(scenario):
    n, initial, weights, ops, seeds, query_pool, depth = scenario
    edges = set(initial)
    weights = np.asarray(weights)
    service = QueryService(
        graph_from_edges(sorted(edges), weights=weights, n=n),
        cache_size=0,  # every submit must face the index, never the LRU
    )
    index = service.enable_index(depth=depth, aggregators=INDEXED)
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    for op, seed in zip(ops, seeds):
        rng = np.random.default_rng(seed)
        if op == "submit":
            query = query_pool[seed % len(query_pool)]
            served = service.submit(query)
            cold = top_r_communities(
                graph_from_edges(sorted(edges), weights=weights, n=n),
                **query.solver_kwargs(),
            )
            assert served == cold
            assert served.values() == cold.values()
        elif op == "edges":
            absent = [edge for edge in possible if edge not in edges]
            present = sorted(edges)
            insert = [absent[rng.integers(len(absent))]] if absent else []
            delete = [present[rng.integers(len(present))]] if present else []
            if not insert and not delete:
                continue
            service.update_edges(insert=insert, delete=delete)
            edges |= set(insert)
            edges -= set(delete)
        else:
            weights = np.round(rng.uniform(0.1, 20.0, n), 4)
            service.update_weights(weights)
    # Whatever the interleaving did, a full sweep at the end still agrees
    # with cold solves level by level.
    final = graph_from_edges(sorted(edges), weights=weights, n=n)
    for k in range(1, service.kmax + 1):
        for f in INDEXED:
            served = service.submit(InfluentialQuery(k=k, r=depth, f=f))
            cold = top_r_communities(final, k=k, r=depth, f=f)
            assert served == cold
            assert served.values() == cold.values()
    assert index.built


@given(scenario=index_scenarios())
@settings(max_examples=15, deadline=None)
def test_snapshot_roundtrip_preserves_churned_index(tmp_path_factory, scenario):
    from repro.serving.store import load_service, save_snapshot

    n, initial, weights, ops, seeds, query_pool, depth = scenario
    edges = set(initial)
    weights = np.asarray(weights)
    service = QueryService(
        graph_from_edges(sorted(edges), weights=weights, n=n), cache_size=0
    )
    service.enable_index(depth=depth, aggregators=INDEXED)
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    for op, seed in zip(ops, seeds):
        rng = np.random.default_rng(seed)
        if op == "edges":
            absent = [edge for edge in possible if edge not in edges]
            insert = [absent[rng.integers(len(absent))]] if absent else []
            if insert:
                service.update_edges(insert=insert)
                edges |= set(insert)
        elif op == "reweight":
            weights = np.round(rng.uniform(0.1, 20.0, n), 4)
            service.update_weights(weights)
    path = tmp_path_factory.mktemp("prop_index") / "snap"
    save_snapshot(service, path)
    restored = load_service(path, cache_size=0)
    assert restored.index is not None
    final = graph_from_edges(sorted(edges), weights=weights, n=n)
    for query in query_pool:
        served = restored.submit(query)
        cold = top_r_communities(final, **query.solver_kwargs())
        assert served == cold
        assert served.values() == cold.values()
