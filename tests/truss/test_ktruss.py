"""Maximal k-truss / components, cross-validated against networkx."""

import networkx as nx
import pytest

from repro.errors import SpecError
from repro.graphs.builder import graph_from_edges
from repro.truss.ktruss import (
    connected_ktruss_components,
    ktruss_of_subset,
    maximal_ktruss,
)
from tests.conftest import random_weighted_graph


def test_matches_networkx():
    for seed in range(5):
        graph = random_weighted_graph(30, 0.25, seed=seed)
        g = nx.Graph()
        g.add_nodes_from(range(graph.n))
        g.add_edges_from(graph.edges())
        for k in (3, 4, 5):
            theirs_graph = nx.k_truss(g, k)
            theirs = {v for v in theirs_graph.nodes if theirs_graph.degree(v) > 0}
            assert maximal_ktruss(graph, k) == theirs


def test_ktruss_of_subset_restricts(tiny):
    vertices, edges = ktruss_of_subset(tiny, {0, 1, 2, 3}, 4)
    assert vertices == {0, 1, 2, 3}
    assert len(edges) == 6
    vertices, edges = ktruss_of_subset(tiny, {0, 1, 2}, 4)
    # A triangle is a 3-truss, not a 4-truss.
    assert vertices == set()


def test_truss_is_subset_of_core(figure1):
    """A k-truss is always inside the (k-1)-core."""
    from repro.core.kcore import maximal_kcore

    for k in (3, 4):
        assert maximal_ktruss(figure1, k) <= maximal_kcore(figure1, k - 1)


def test_components_split_on_truss_edges(two_triangles):
    comps = connected_ktruss_components(two_triangles, range(6), 3)
    assert [sorted(c) for c in comps] == [[0, 1, 2], [3, 4, 5]]
    assert connected_ktruss_components(two_triangles, range(6), 4) == []


def test_figure1_truss_components(figure1):
    comps = connected_ktruss_components(figure1, range(11), 3)
    # Triangles {v1,v2,v4} and the triangle-connected cluster around v5-v11.
    as_paper = sorted(sorted(v + 1 for v in c) for c in comps)
    assert [1, 2, 4] in as_paper
    assert [3, 5, 6, 7, 8, 9, 10, 11] in as_paper


def test_k2_truss_is_whole_edge_set(figure1):
    vertices, edges = ktruss_of_subset(figure1, range(11), 2)
    assert vertices == set(range(11))
    assert len(edges) == figure1.m


def test_invalid_k_rejected(figure1):
    with pytest.raises(SpecError):
        maximal_ktruss(figure1, 1)


def test_bridge_not_truss_connected():
    # Two triangles joined by a single bridge edge: the bridge has support
    # 0 so the 3-truss splits into the two triangles.
    graph = graph_from_edges(
        [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]
    )
    comps = connected_ktruss_components(graph, range(6), 3)
    assert [sorted(c) for c in comps] == [[0, 1, 2], [3, 4, 5]]
