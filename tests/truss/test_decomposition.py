"""Truss decomposition cross-validated against networkx."""

import networkx as nx

from repro.graphs.builder import graph_from_edges
from repro.truss.decomposition import edge_supports, truss_decomposition, truss_max
from tests.conftest import random_weighted_graph


def _to_nx(graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    g.add_edges_from(graph.edges())
    return g


def test_supports_on_k4():
    k4 = graph_from_edges([(i, j) for i in range(4) for j in range(i + 1, 4)])
    supports = edge_supports(k4)
    assert all(s == 2 for s in supports.values())  # each K4 edge in 2 triangles
    assert len(supports) == 6


def test_supports_triangle_free():
    c5 = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
    assert all(s == 0 for s in edge_supports(c5).values())


def test_truss_numbers_on_k5():
    k5 = graph_from_edges([(i, j) for i in range(5) for j in range(i + 1, 5)])
    truss = truss_decomposition(k5)
    assert all(t == 5 for t in truss.values())  # K_q is a q-truss
    assert truss_max(k5) == 5


def test_truss_numbers_match_networkx_ktruss():
    """For every k, the edges with truss number >= k must equal the edge
    set of networkx's k-truss."""
    for seed in range(5):
        graph = random_weighted_graph(25, 0.3, seed=seed)
        truss = truss_decomposition(graph)
        g = _to_nx(graph)
        for k in (3, 4, 5, 6):
            ours = {e for e, t in truss.items() if t >= k}
            theirs = {
                (min(u, v), max(u, v)) for u, v in nx.k_truss(g, k).edges()
            }
            assert ours == theirs, (seed, k)


def test_edge_truss_at_least_two():
    graph = random_weighted_graph(15, 0.2, seed=9)
    truss = truss_decomposition(graph)
    assert all(t >= 2 for t in truss.values())
    assert len(truss) == graph.m


def test_empty_graph_truss():
    from repro.graphs.builder import GraphBuilder

    empty = GraphBuilder(3).build()
    assert truss_decomposition(empty) == {}
    assert truss_max(empty) == 0


def test_tiny_kcore_graph_truss(tiny):
    truss = truss_decomposition(tiny)
    # K4 edges have truss number 4; the pendant edges 2.
    assert truss[(0, 1)] == 4
    assert truss[(5, 6)] == 2
    assert truss_max(tiny) == 4
