"""Unit tests for the bisect-backed sorted multiset."""

import pytest

from repro.utils.sortedlist import SortedMultiset


def test_construction_sorts():
    ms = SortedMultiset([3.0, 1.0, 2.0])
    assert list(ms) == [1.0, 2.0, 3.0]


def test_add_keeps_order_and_duplicates():
    ms = SortedMultiset()
    for x in [5.0, 1.0, 5.0, 3.0]:
        ms.add(x)
    assert list(ms) == [1.0, 3.0, 5.0, 5.0]
    assert ms.count(5.0) == 2


def test_remove_one_occurrence():
    ms = SortedMultiset([2.0, 2.0, 3.0])
    ms.remove(2.0)
    assert list(ms) == [2.0, 3.0]


def test_remove_missing_raises():
    ms = SortedMultiset([1.0])
    with pytest.raises(KeyError):
        ms.remove(9.0)


def test_discard_returns_flag():
    ms = SortedMultiset([1.0])
    assert ms.discard(1.0) is True
    assert ms.discard(1.0) is False


def test_min_max_kth():
    ms = SortedMultiset([4.0, 1.0, 3.0])
    assert ms.min() == 1.0
    assert ms.max() == 4.0
    assert ms.kth(1) == 3.0


def test_min_max_empty_raise():
    ms = SortedMultiset()
    with pytest.raises(ValueError):
        ms.min()
    with pytest.raises(ValueError):
        ms.max()


def test_contains():
    ms = SortedMultiset([1.5, 2.5])
    assert 1.5 in ms
    assert 2.0 not in ms
