"""Unit tests for the bounded top-r accumulator."""

import pytest

from repro.utils.topr import TopR


def test_keeps_best_r():
    top: TopR[int] = TopR(3, key=float)
    top.offer_all([5, 1, 9, 7, 3])
    assert top.ranked() == [9, 7, 5]


def test_offer_returns_membership():
    top: TopR[int] = TopR(2, key=float)
    assert top.offer(1) is True
    assert top.offer(2) is True
    assert top.offer(0) is False  # worse than both
    assert top.offer(5) is True   # evicts 1


def test_threshold_tracks_rth_value():
    top: TopR[int] = TopR(2, key=float)
    assert top.threshold() == float("-inf")
    top.offer(4)
    assert top.threshold() == float("-inf")  # not full yet
    top.offer(9)
    assert top.threshold() == 4.0
    top.offer(6)
    assert top.threshold() == 6.0


def test_tie_break_prefers_earlier_insertion():
    top: TopR[str] = TopR(1, key=len)
    top.offer("aa")
    top.offer("bb")  # same key, later: must NOT replace
    assert top.ranked() == ["aa"]


def test_best_and_weakest():
    top: TopR[int] = TopR(3, key=float)
    top.offer_all([4, 8, 6])
    assert top.best() == 8
    assert top.weakest() == 4


def test_empty_accessors_raise():
    top: TopR[int] = TopR(2, key=float)
    with pytest.raises(IndexError):
        top.best()
    with pytest.raises(IndexError):
        top.weakest()


def test_invalid_r_rejected():
    with pytest.raises(ValueError):
        TopR(0, key=float)


def test_is_full_and_capacity():
    top: TopR[int] = TopR(2, key=float)
    assert top.capacity == 2
    assert not top.is_full
    top.offer_all([1, 2])
    assert top.is_full


def test_iteration_best_first():
    top: TopR[int] = TopR(4, key=float)
    top.offer_all([3, 1, 4, 1, 5])
    assert list(top) == top.ranked()
