"""Unit tests for the indexed and lazy heaps."""

import pytest

from repro.utils.heaps import IndexedMaxHeap, LazyMaxHeap


class TestIndexedMaxHeap:
    def test_push_pop_max_order(self):
        heap = IndexedMaxHeap()
        for item, prio in [(1, 5.0), (2, 9.0), (3, 1.0), (4, 7.0)]:
            heap.push(item, prio)
        popped = [heap.pop() for __ in range(4)]
        assert popped == [(2, 9.0), (4, 7.0), (1, 5.0), (3, 1.0)]

    def test_min_heap_mode(self):
        heap = IndexedMaxHeap(reverse=True)
        for item, prio in [(1, 5.0), (2, 9.0), (3, 1.0)]:
            heap.push(item, prio)
        assert heap.pop() == (3, 1.0)
        assert heap.pop() == (1, 5.0)

    def test_remove_from_middle(self):
        heap = IndexedMaxHeap()
        for item in range(10):
            heap.push(item, float(item))
        assert heap.remove(5) == 5.0
        assert 5 not in heap
        order = [heap.pop()[0] for __ in range(len(heap))]
        assert order == [9, 8, 7, 6, 4, 3, 2, 1, 0]

    def test_update_priority(self):
        heap = IndexedMaxHeap()
        heap.push(1, 1.0)
        heap.push(2, 2.0)
        heap.update(1, 10.0)
        assert heap.peek() == (1, 10.0)
        heap.update(1, 0.5)
        assert heap.peek() == (2, 2.0)

    def test_tie_break_by_item_id(self):
        heap = IndexedMaxHeap()
        heap.push(7, 1.0)
        heap.push(3, 1.0)
        heap.push(5, 1.0)
        assert [heap.pop()[0] for __ in range(3)] == [3, 5, 7]

    def test_duplicate_push_rejected(self):
        heap = IndexedMaxHeap()
        heap.push(1, 1.0)
        with pytest.raises(KeyError):
            heap.push(1, 2.0)

    def test_empty_errors(self):
        heap = IndexedMaxHeap()
        with pytest.raises(IndexError):
            heap.peek()
        with pytest.raises(IndexError):
            heap.pop()
        with pytest.raises(KeyError):
            heap.update(1, 1.0)

    def test_items_iteration(self):
        heap = IndexedMaxHeap()
        heap.push(1, 3.0)
        heap.push(2, 4.0)
        assert dict(heap.items()) == {1: 3.0, 2: 4.0}


class TestLazyMaxHeap:
    def test_pop_order(self):
        heap: LazyMaxHeap[str] = LazyMaxHeap()
        heap.push(1.0, "low")
        heap.push(3.0, "high")
        heap.push(2.0, "mid")
        assert heap.pop() == (3.0, "high")
        assert heap.pop() == (2.0, "mid")

    def test_invalidate_skips_entry(self):
        heap: LazyMaxHeap[str] = LazyMaxHeap()
        heap.push(1.0, "keep")
        token = heap.push(5.0, "dead")
        heap.invalidate(token)
        assert len(heap) == 1
        assert heap.pop() == (1.0, "keep")

    def test_double_invalidate_is_idempotent(self):
        heap: LazyMaxHeap[int] = LazyMaxHeap()
        token = heap.push(1.0, 42)
        heap.invalidate(token)
        heap.invalidate(token)
        assert len(heap) == 0
        assert not heap

    def test_empty_pop_raises(self):
        heap: LazyMaxHeap[int] = LazyMaxHeap()
        with pytest.raises(IndexError):
            heap.pop()

    def test_peek_does_not_remove(self):
        heap: LazyMaxHeap[int] = LazyMaxHeap()
        heap.push(2.0, 7)
        assert heap.peek() == (2.0, 7)
        assert len(heap) == 1

    def test_fifo_among_equal_priorities(self):
        heap: LazyMaxHeap[str] = LazyMaxHeap()
        heap.push(1.0, "first")
        heap.push(1.0, "second")
        assert heap.pop()[1] == "first"
