"""Unit tests for table rendering."""

import pytest

from repro.utils.tables import format_markdown_table, format_table


def test_ascii_alignment():
    out = format_table(["name", "v"], [["alpha", 1], ["b", 22]])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert "alpha" in lines[2]
    # Separator row has the same dash structure as the header width.
    assert set(lines[1]) <= {"-", "+"}


def test_title_prepended():
    out = format_table(["a"], [[1]], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_float_formatting_compact():
    out = format_table(["x"], [[0.000001234], [1234567.0], [1.5], [0.0]])
    assert "1.234e-06" in out
    assert "1.235e+06" in out
    assert "1.5" in out
    assert "0" in out


def test_row_arity_checked():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])
    with pytest.raises(ValueError):
        format_markdown_table(["a"], [[1, 2]])


def test_markdown_structure():
    out = format_markdown_table(["h1", "h2"], [["x", "y"]])
    lines = out.splitlines()
    assert lines[0] == "| h1 | h2 |"
    assert lines[1] == "|---|---|"
    assert lines[2] == "| x | y |"
