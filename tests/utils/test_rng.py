"""Unit tests for seeded randomness helpers."""

import numpy as np
import pytest

from repro.utils.rng import DEFAULT_SEED, make_rng, spawn_seeds


def test_same_seed_same_stream():
    a, b = make_rng(42), make_rng(42)
    assert a.integers(1000) == b.integers(1000)


def test_none_uses_default_seed():
    a, b = make_rng(None), make_rng(DEFAULT_SEED)
    assert a.integers(1000) == b.integers(1000)


def test_generator_passthrough():
    rng = np.random.default_rng(7)
    assert make_rng(rng) is rng


def test_spawn_seeds_deterministic_and_distinct():
    seeds1 = spawn_seeds(5, 8)
    seeds2 = spawn_seeds(5, 8)
    assert seeds1 == seeds2
    assert len(set(seeds1)) == 8


def test_spawn_seeds_differ_by_parent():
    assert spawn_seeds(1, 4) != spawn_seeds(2, 4)


def test_spawn_negative_count_rejected():
    with pytest.raises(ValueError):
        spawn_seeds(1, -1)
