"""Unit tests for the disjoint-set union."""

import pytest

from repro.utils.dsu import DisjointSetUnion


def test_initial_state():
    dsu = DisjointSetUnion(5)
    assert len(dsu) == 5
    assert dsu.component_count == 5
    for v in range(5):
        assert dsu.find(v) == v


def test_union_merges_and_reports():
    dsu = DisjointSetUnion(4)
    assert dsu.union(0, 1) is True
    assert dsu.union(0, 1) is False  # already merged
    assert dsu.connected(0, 1)
    assert not dsu.connected(0, 2)
    assert dsu.component_count == 3


def test_size_tracking():
    dsu = DisjointSetUnion(6)
    dsu.union(0, 1)
    dsu.union(1, 2)
    assert dsu.size_of(0) == 3
    assert dsu.size_of(2) == 3
    assert dsu.size_of(5) == 1


def test_union_all_counts_merges():
    dsu = DisjointSetUnion(4)
    merges = dsu.union_all([(0, 1), (1, 2), (0, 2), (2, 3)])
    assert merges == 3
    assert dsu.component_count == 1


def test_components_partition():
    dsu = DisjointSetUnion(5)
    dsu.union(0, 3)
    dsu.union(1, 4)
    components = dsu.components()
    assert sorted(map(sorted, components)) == [[0, 3], [1, 4], [2]]


def test_representatives_one_per_set():
    dsu = DisjointSetUnion(4)
    dsu.union(0, 1)
    reps = list(dsu.representatives())
    assert len(reps) == 3
    assert len(set(dsu.find(r) for r in reps)) == 3


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        DisjointSetUnion(-1)


def test_transitive_connectivity_chain():
    dsu = DisjointSetUnion(100)
    for i in range(99):
        dsu.union(i, i + 1)
    assert dsu.connected(0, 99)
    assert dsu.component_count == 1
    assert dsu.size_of(50) == 100
