"""Unit tests for the disjoint-set union."""

import pytest

from repro.utils.dsu import DisjointSetUnion


def test_initial_state():
    dsu = DisjointSetUnion(5)
    assert len(dsu) == 5
    assert dsu.component_count == 5
    for v in range(5):
        assert dsu.find(v) == v


def test_union_merges_and_reports():
    dsu = DisjointSetUnion(4)
    assert dsu.union(0, 1) is True
    assert dsu.union(0, 1) is False  # already merged
    assert dsu.connected(0, 1)
    assert not dsu.connected(0, 2)
    assert dsu.component_count == 3


def test_size_tracking():
    dsu = DisjointSetUnion(6)
    dsu.union(0, 1)
    dsu.union(1, 2)
    assert dsu.size_of(0) == 3
    assert dsu.size_of(2) == 3
    assert dsu.size_of(5) == 1


def test_union_all_counts_merges():
    dsu = DisjointSetUnion(4)
    merges = dsu.union_all([(0, 1), (1, 2), (0, 2), (2, 3)])
    assert merges == 3
    assert dsu.component_count == 1


def test_components_partition():
    dsu = DisjointSetUnion(5)
    dsu.union(0, 3)
    dsu.union(1, 4)
    components = dsu.components()
    assert sorted(map(sorted, components)) == [[0, 3], [1, 4], [2]]


def test_representatives_one_per_set():
    dsu = DisjointSetUnion(4)
    dsu.union(0, 1)
    reps = list(dsu.representatives())
    assert len(reps) == 3
    assert len(set(dsu.find(r) for r in reps)) == 3


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        DisjointSetUnion(-1)


def test_transitive_connectivity_chain():
    dsu = DisjointSetUnion(100)
    for i in range(99):
        dsu.union(i, i + 1)
    assert dsu.connected(0, 99)
    assert dsu.component_count == 1
    assert dsu.size_of(50) == 100


def test_path_compression_zero_elements():
    dsu = DisjointSetUnion(0)
    assert len(dsu) == 0
    assert dsu.component_count == 0
    assert dsu.components() == []
    assert list(dsu.representatives()) == []


def test_path_compression_flattens_chains():
    """After find(), every vertex on the walked path points at the root."""
    dsu = DisjointSetUnion(8)
    # Build a deliberate parent chain 0 <- 1 <- 2 <- ... <- 7 by unioning
    # in an order that keeps attaching the singleton to the growing set.
    for i in range(7):
        dsu.union(0, i + 1)
    root = dsu.find(7)
    # Path compression is an internal detail; observe it via _parent.
    assert all(dsu._parent[v] == root for v in range(8))


def test_find_self_root_is_identity_and_idempotent():
    dsu = DisjointSetUnion(3)
    assert dsu.find(2) == 2
    assert dsu.find(2) == 2  # repeated finds on a root stay stable
    dsu.union(0, 1)
    r = dsu.find(0)
    assert dsu.find(r) == r


def test_union_by_size_keeps_larger_root():
    dsu = DisjointSetUnion(6)
    dsu.union(0, 1)
    dsu.union(0, 2)  # {0,1,2}
    big_root = dsu.find(0)
    dsu.union(3, 4)  # {3,4}
    dsu.union(2, 3)  # smaller set attaches under the larger root
    assert dsu.find(4) == big_root
    assert dsu.size_of(4) == 5


def test_compression_preserves_sizes_and_count():
    """size_of/component_count stay exact through deep compressions."""
    dsu = DisjointSetUnion(64)
    for i in range(0, 64, 2):
        dsu.union(i, i + 1)
    for i in range(0, 62, 4):
        dsu.union(i, i + 2)
    count_before = dsu.component_count
    sizes_before = sorted(dsu.size_of(v) for v in range(64))
    for v in range(64):  # full compression pass
        dsu.find(v)
    assert dsu.component_count == count_before
    assert sorted(dsu.size_of(v) for v in range(64)) == sizes_before
