"""Unit tests for the ASCII chart renderer."""

from repro.utils.charts import ascii_chart


def test_basic_chart_structure():
    chart = ascii_chart([4, 6], {"naive": [1.0, 0.5], "improve": [0.1, 0.05]})
    lines = chart.splitlines()
    assert "log scale" in lines[0]
    assert any("o" in line for line in lines)  # first series symbol
    assert any("x" in line for line in lines)  # second series symbol
    assert "o=naive" in lines[-1]
    assert "x=improve" in lines[-1]


def test_extremes_on_boundary_rows():
    chart = ascii_chart([1, 2], {"a": [100.0, 0.001]}, height=6)
    lines = chart.splitlines()
    # Max value lands on the top plot row, min on the bottom one.
    assert "a" == "a" and "o" in lines[1]
    assert "o" in lines[6]


def test_none_points_skipped():
    chart = ascii_chart([1, 2, 3], {"a": [None, 1.0, None]})
    assert chart.count("o") >= 1  # only the present point is plotted


def test_no_data_stub():
    assert ascii_chart([1, 2], {"a": [None, None]}) == "(no data to chart)"
    assert ascii_chart([], {}) == "(no data to chart)"


def test_linear_scale():
    chart = ascii_chart([1, 2], {"a": [1.0, 2.0]}, log_scale=False, y_label="value")
    assert "linear" in chart.splitlines()[0]


def test_collision_marked():
    chart = ascii_chart([1], {"a": [1.0], "b": [1.0]})
    assert "*" in chart  # coinciding points collapse to '*'


def test_flat_series_does_not_crash():
    chart = ascii_chart([1, 2, 3], {"a": [5.0, 5.0, 5.0]})
    assert "o" in chart
