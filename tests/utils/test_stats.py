"""Unit tests for subset statistics."""

import pytest

from repro.utils.stats import IncrementalStats, SubsetStats


class TestSubsetStats:
    def test_of_list(self):
        stats = SubsetStats.of([2.0, 5.0, 3.0])
        assert stats.size == 3
        assert stats.weight_sum == 10.0
        assert stats.weight_min == 2.0
        assert stats.weight_max == 5.0

    def test_empty(self):
        stats = SubsetStats.empty()
        assert stats.size == 0
        assert stats.weight_sum == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SubsetStats(-1, 0.0, 0.0, 0.0)

    def test_nonzero_sum_on_empty_rejected(self):
        with pytest.raises(ValueError):
            SubsetStats(0, 1.0, 0.0, 0.0)


class TestIncrementalStats:
    def test_add_then_snapshot(self):
        inc = IncrementalStats()
        for w in [1.0, 4.0, 2.0]:
            inc.add(w)
        snap = inc.snapshot()
        assert snap == SubsetStats(3, 7.0, 1.0, 4.0)

    def test_remove_restores_extrema(self):
        inc = IncrementalStats()
        for w in [1.0, 4.0, 2.0]:
            inc.add(w)
        inc.remove(1.0)
        snap = inc.snapshot()
        assert snap.weight_min == 2.0
        assert snap.weight_sum == 6.0

    def test_remove_absent_raises(self):
        inc = IncrementalStats()
        inc.add(1.0)
        with pytest.raises(KeyError):
            inc.remove(2.0)

    def test_matches_recompute_after_mixed_ops(self):
        inc = IncrementalStats()
        reference: list[float] = []
        ops = [("+", 3.0), ("+", 1.0), ("+", 3.0), ("-", 3.0), ("+", 9.0), ("-", 1.0)]
        for op, w in ops:
            if op == "+":
                inc.add(w)
                reference.append(w)
            else:
                inc.remove(w)
                reference.remove(w)
        assert inc.snapshot() == SubsetStats.of(reference)

    def test_empty_snapshot(self):
        assert IncrementalStats().snapshot() == SubsetStats.empty()

    def test_len_and_properties(self):
        inc = IncrementalStats()
        inc.add(2.0)
        inc.add(3.0)
        assert len(inc) == 2
        assert inc.size == 2
        assert inc.weight_sum == 5.0
