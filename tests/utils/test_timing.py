"""Unit tests for the stopwatch and duration formatting."""

import pytest

from repro.utils.timing import Stopwatch, format_seconds


def test_context_manager_accumulates():
    sw = Stopwatch()
    with sw:
        sum(range(100))
    with sw:
        sum(range(100))
    assert sw.elapsed > 0
    assert len(sw.laps) == 2
    assert abs(sum(sw.laps) - sw.elapsed) < 1e-9


def test_double_start_rejected():
    sw = Stopwatch()
    sw.start()
    with pytest.raises(RuntimeError):
        sw.start()
    sw.stop()


def test_stop_without_start_rejected():
    with pytest.raises(RuntimeError):
        Stopwatch().stop()


def test_reset():
    sw = Stopwatch()
    with sw:
        pass
    sw.reset()
    assert sw.elapsed == 0.0
    assert sw.laps == []


def test_reset_while_running_rejected():
    sw = Stopwatch()
    sw.start()
    with pytest.raises(RuntimeError):
        sw.reset()
    sw.stop()


@pytest.mark.parametrize(
    "seconds,expected",
    [
        (0.0000005, "0us"),
        (0.00042, "420us"),
        (0.042, "42.0ms"),
        (2.5, "2.50s"),
        (125.0, "2m05.0s"),
    ],
)
def test_format_seconds(seconds, expected):
    assert format_seconds(seconds) == expected


def test_negative_duration_rejected():
    with pytest.raises(ValueError):
        format_seconds(-1.0)
