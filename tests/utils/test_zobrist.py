"""Unit tests for Zobrist hashing and the community deduper."""

import pytest

from repro.utils.zobrist import CommunityDeduper, ZobristHasher


def test_hash_set_is_order_independent():
    hasher = ZobristHasher(10)
    assert hasher.hash_set([1, 2, 3]) == hasher.hash_set([3, 1, 2])


def test_toggle_adds_and_removes():
    hasher = ZobristHasher(10)
    h = hasher.hash_set([1, 2])
    h_with_3 = hasher.toggle(h, 3)
    assert h_with_3 == hasher.hash_set([1, 2, 3])
    assert hasher.toggle(h_with_3, 3) == h


def test_empty_set_hashes_to_zero():
    hasher = ZobristHasher(4)
    assert hasher.hash_set([]) == 0


def test_deterministic_across_instances():
    a, b = ZobristHasher(8, seed=7), ZobristHasher(8, seed=7)
    assert a.hash_set([0, 5]) == b.hash_set([0, 5])


def test_different_seeds_differ():
    a, b = ZobristHasher(8, seed=1), ZobristHasher(8, seed=2)
    assert a.hash_set([0, 5]) != b.hash_set([0, 5])


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        ZobristHasher(-1)


class TestCommunityDeduper:
    def test_first_add_true_second_false(self):
        deduper = CommunityDeduper(ZobristHasher(10))
        assert deduper.add(frozenset({1, 2})) is True
        assert deduper.add(frozenset({1, 2})) is False
        assert len(deduper) == 1

    def test_distinct_sets_both_accepted(self):
        deduper = CommunityDeduper(ZobristHasher(10))
        assert deduper.add(frozenset({1, 2}))
        assert deduper.add(frozenset({1, 3}))
        assert len(deduper) == 2

    def test_seen_without_mutation(self):
        deduper = CommunityDeduper(ZobristHasher(10))
        s = frozenset({4, 5})
        assert not deduper.seen(s)
        deduper.add(s)
        assert deduper.seen(s)

    def test_precomputed_key_path(self):
        hasher = ZobristHasher(10)
        deduper = CommunityDeduper(hasher)
        s = frozenset({2, 7})
        key = hasher.hash_set(s)
        assert deduper.add(s, key) is True
        assert deduper.add(s, key) is False

    def test_exact_on_forced_collision(self):
        # Two different sets deliberately filed under the same key must
        # still be distinguished by the exact frozenset comparison.
        hasher = ZobristHasher(10)
        deduper = CommunityDeduper(hasher)
        fake_key = 12345
        assert deduper.add(frozenset({1}), fake_key) is True
        assert deduper.add(frozenset({2}), fake_key) is True
        assert deduper.add(frozenset({1}), fake_key) is False
        assert len(deduper) == 2
