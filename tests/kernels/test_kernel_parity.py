"""Parity of the kernel tier against the numpy fallback and set oracles.

Three implementations of every hot kernel must agree *bit for bit*:

* whatever :mod:`repro.kernels` dispatched to at import time (compiled
  Numba kernels when installed, the numpy fallback otherwise),
* :mod:`repro.kernels._numpy` pinned directly (so on a Numba-equipped
  machine this suite really holds compiled-vs-fallback together — on a
  fallback-only machine the pair is trivially equal and the set oracle
  carries the test),
* the original ``backend="set"`` implementations above the kernel tier.

Exactness is the contract: peel fixpoints, component splits, core
numbers and triangle counts are integer results with one correct value,
so solvers may switch backends without their answers moving by a bit.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.core.decomposition import core_decomposition
from repro.core.kcore import kcore_of_subset
from repro.graphs.builder import graph_from_edges
from repro.graphs.components import connected_components_of
from repro.kernels import _numpy as fallback
from repro.truss.decomposition import edge_supports


@st.composite
def graphs(draw, min_n=2, max_n=16, max_edges=48):
    n = draw(st.integers(min_n, max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=max_edges)
    )
    return graph_from_edges(edges, weights=[1.0] * n, n=n)


def _subset_mask(draw_subset, graph, data):
    subset = data.draw(
        st.lists(
            st.integers(0, graph.n - 1), unique=True, max_size=graph.n
        )
    )
    mask = np.zeros(graph.n, dtype=bool)
    mask[subset] = True
    return subset, mask


def _forward_arcs(graph):
    """The (fptr, fsrc, fdst) degree orientation ``edge_supports`` builds."""
    csr = graph.csr
    n = csr.n
    degree = csr.degrees()
    order = np.lexsort((np.arange(n), degree))
    position = np.empty(n, dtype=np.int64)
    position[order] = np.arange(n)
    src = np.repeat(np.arange(n, dtype=np.int64), degree)
    keep = position[src] < position[csr.indices]
    fsrc, fdst = src[keep], csr.indices[keep]
    fptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(fsrc, minlength=n), out=fptr[1:])
    return fptr, fsrc, fdst


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_core_numbers_parity(graph):
    csr = graph.csr
    oracle = core_decomposition(graph, backend="set")
    dispatched = kernels.core_numbers(csr.indptr, csr.indices)
    pure = fallback.core_numbers(csr.indptr, csr.indices)
    assert dispatched.dtype == np.int64 and pure.dtype == np.int64
    assert np.array_equal(dispatched, oracle)
    assert np.array_equal(dispatched, pure)


@given(graphs(), st.integers(0, 5), st.data())
@settings(max_examples=60, deadline=None)
def test_peel_to_kcore_parity(graph, k, data):
    subset, mask = _subset_mask(None, graph, data)
    oracle = kcore_of_subset(graph, subset, k, backend="set")
    csr = graph.csr
    results = {}
    for name, impl in (("dispatch", kernels), ("numpy", fallback)):
        peel_mask = mask.copy()
        degrees = csr.subset_degrees(peel_mask)
        impl.peel_to_kcore(csr.indptr, csr.indices, peel_mask, k, degrees)
        results[name] = (peel_mask, degrees)
        assert set(np.flatnonzero(peel_mask).tolist()) == oracle
        # Survivor degrees are exact induced degrees of the fixpoint.
        assert np.array_equal(
            degrees[peel_mask], csr.subset_degrees(peel_mask)[peel_mask]
        )
    assert np.array_equal(results["dispatch"][0], results["numpy"][0])
    # Survivor entries agree bitwise; deleted entries may hold stale
    # values and those are explicitly outside the kernel contract.
    survivors = results["dispatch"][0]
    assert np.array_equal(
        results["dispatch"][1][survivors], results["numpy"][1][survivors]
    )


@given(graphs(), st.data())
@settings(max_examples=60, deadline=None)
def test_components_of_mask_parity(graph, data):
    subset, mask = _subset_mask(None, graph, data)
    oracle = connected_components_of(graph, subset, backend="set")
    csr = graph.csr
    before = mask.copy()
    dispatched = kernels.components_of_mask(csr.indptr, csr.indices, mask)
    pure = fallback.components_of_mask(csr.indptr, csr.indices, mask)
    assert np.array_equal(mask, before), "mask must not be modified"
    assert [set(piece.tolist()) for piece in dispatched] == oracle
    assert len(dispatched) == len(pure)
    for a, b in zip(dispatched, pure):
        # Identical contract down to dtype and sortedness.
        assert a.dtype == np.int64 and b.dtype == np.int64
        assert np.array_equal(a, b)
        assert np.array_equal(a, np.sort(a))


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_arc_supports_parity(graph):
    oracle = edge_supports(graph, backend="set")
    fptr, fsrc, fdst = _forward_arcs(graph)
    dispatched = kernels.arc_supports(fptr, fdst)
    pure = fallback.arc_supports(fptr, fdst)
    assert dispatched.dtype == np.int64 and pure.dtype == np.int64
    assert np.array_equal(dispatched, pure)
    lo = np.minimum(fsrc, fdst).tolist()
    hi = np.maximum(fsrc, fdst).tolist()
    assert {
        (u, v): s for u, v, s in zip(lo, hi, dispatched.tolist())
    } == oracle


def test_empty_graph_kernels():
    empty_ptr = np.zeros(1, dtype=np.int64)
    empty_idx = np.zeros(0, dtype=np.int32)
    assert kernels.core_numbers(empty_ptr, empty_idx).size == 0
    assert (
        kernels.components_of_mask(
            empty_ptr, empty_idx, np.zeros(0, dtype=bool)
        )
        == []
    )
    assert kernels.arc_supports(empty_ptr, empty_idx).size == 0
