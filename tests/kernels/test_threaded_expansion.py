"""Thread-safety of shared expansion state and threaded-expand parity.

A :class:`ComponentStructure` is documented as immutable-after-build and
shareable across any number of concurrent contexts, and the threaded
``expand`` path is documented as byte-identical to the sequential one.
Both claims are load-bearing (the serving engine pool and the expansion
thread pool rely on them), so both are pinned here under Hypothesis.
"""

import contextlib
import os
from concurrent.futures import ThreadPoolExecutor

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregators.registry import get_aggregator
from repro.core.kcore import connected_kcore_components
from repro.graphs.builder import graph_from_edges
from repro.influential.expansion import expansion_context, members_frozenset
from repro.utils import parallel
from repro.utils.zobrist import ZobristHasher


@st.composite
def weighted_graphs(draw, min_n=4, max_n=16, max_edges=48):
    n = draw(st.integers(min_n, max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=max_edges)
    )
    weights = draw(st.lists(st.floats(0.1, 50.0), min_size=n, max_size=n))
    return graph_from_edges(edges, weights=weights, n=n)


def _flatten(children):
    return [
        (members_frozenset(child.vertices), child.value, child.key)
        for child in children
    ]


@given(weighted_graphs(), st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_concurrent_children_match_sequential(graph, k):
    """N threads hammering ``children_after_removal`` against one shared
    ComponentStructure produce exactly the sequential answers — including
    through the lazily initialised articulation mask, which every thread
    races to compute on its first cascade."""
    aggregator = get_aggregator("sum")
    hasher = ZobristHasher(graph.n)
    for component in connected_kcore_components(graph, range(graph.n), k):
        value = aggregator.value(graph, frozenset(component))
        ctx = expansion_context(
            graph, frozenset(component), k, aggregator, value, hasher,
            backend="csr",
        )
        vertices = sorted(component)
        expected = {}
        for vertex in vertices:
            expected[vertex] = _flatten(ctx.children_after_removal(vertex))
        # Fresh context so the articulation mask is recomputed under
        # contention rather than inherited from the sequential pass.
        shared = expansion_context(
            graph, frozenset(component), k, aggregator, value, hasher,
            backend="csr",
        )
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = {
                vertex: pool.submit(shared.children_after_removal, vertex)
                for vertex in vertices
                for __ in range(2)  # duplicate submissions raise contention
            }
            for vertex, future in futures.items():
                assert _flatten(future.result()) == expected[vertex], vertex


@given(weighted_graphs(), st.integers(1, 3), st.floats(0.0, 0.99))
@settings(max_examples=30, deadline=None)
def test_threaded_expand_matches_sequential(graph, k, rel_floor):
    """``expand`` with the thread pool forced on emits the byte-identical
    child sequence (same order, values, keys) as the sequential path,
    with and without a live floor."""
    aggregator = get_aggregator("sum")
    hasher = ZobristHasher(graph.n)
    for component in connected_kcore_components(graph, range(graph.n), k):
        value = aggregator.value(graph, frozenset(component))
        floor = rel_floor * value
        for use_floor in (False, True):
            sequential = _run_with_threads(
                graph, component, k, aggregator, value, hasher,
                floor if use_floor else None, threads=0,
            )
            threaded = _run_with_threads(
                graph, component, k, aggregator, value, hasher,
                floor if use_floor else None, threads=2,
            )
            assert threaded == sequential, (k, use_floor)


@contextlib.contextmanager
def _pinned_threads(threads):
    """Pin REPRO_EXPANSION_THREADS for the duration of one expansion."""
    env_var = parallel.EXPANSION_THREADS_ENV_VAR
    previous = os.environ.get(env_var)
    os.environ[env_var] = str(threads)
    try:
        yield
    finally:
        if previous is None:
            del os.environ[env_var]
        else:
            os.environ[env_var] = previous


def _run_with_threads(
    graph, component, k, aggregator, value, hasher, floor, threads
):
    """Expand one component with REPRO_EXPANSION_THREADS pinned."""
    with _pinned_threads(threads):
        ctx = expansion_context(
            graph, frozenset(component), k, aggregator, value, hasher,
            backend="csr",
        )
        iterator = ctx.expand() if floor is None else ctx.expand(floor)
        return _flatten(iterator)


@given(weighted_graphs(min_n=6), st.integers(1, 2))
@settings(max_examples=15, deadline=None)
def test_threaded_expand_abandoned_generator(graph, k):
    """Abandoning a threaded expand mid-stream (the solver's early-exit
    pattern) must not wedge the shared pool or leak state into the next
    expansion."""
    aggregator = get_aggregator("sum")
    hasher = ZobristHasher(graph.n)
    for component in connected_kcore_components(graph, range(graph.n), k):
        value = aggregator.value(graph, frozenset(component))
        full = _run_with_threads(
            graph, component, k, aggregator, value, hasher, None, threads=0
        )
        with _pinned_threads(2):
            ctx = expansion_context(
                graph, frozenset(component), k, aggregator, value, hasher,
                backend="csr",
            )
            iterator = ctx.expand()
            taken = []
            for child in iterator:
                taken.append(
                    (members_frozenset(child.vertices), child.value, child.key)
                )
                if len(taken) >= 2:
                    break
            iterator.close()
            again = _flatten(
                expansion_context(
                    graph, frozenset(component), k, aggregator, value,
                    hasher, backend="csr",
                ).expand()
            )
        assert taken == full[: len(taken)]
        assert again == full
