"""Backend dispatch: kill-switch, reporting, and fallback availability."""

import os
import subprocess
import sys

from repro import kernels

_PROBE = (
    "from repro import kernels; "
    "print(kernels.kernel_backend(), kernels.NUMBA_AVAILABLE, "
    "kernels.NUMBA_DISABLED)"
)


def _probe(extra_env):
    env = dict(os.environ)
    env.pop(kernels.NO_NUMBA_ENV_VAR, None)
    env.update(extra_env)
    env.setdefault("PYTHONPATH", "src")
    out = subprocess.run(
        [sys.executable, "-c", _PROBE],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    backend, available, disabled = out.stdout.split()
    return backend, available == "True", disabled == "True"


def test_kill_switch_forces_numpy():
    backend, available, disabled = _probe({kernels.NO_NUMBA_ENV_VAR: "1"})
    assert (backend, available, disabled) == ("numpy", False, True)


def test_kill_switch_zero_means_enabled():
    __, __, disabled = _probe({kernels.NO_NUMBA_ENV_VAR: "0"})
    assert not disabled
    __, __, disabled = _probe({kernels.NO_NUMBA_ENV_VAR: ""})
    assert not disabled


def test_backend_report_is_consistent():
    assert kernels.kernel_backend() in ("numba", "numpy")
    assert kernels.kernel_backend() == (
        "numba" if kernels.NUMBA_AVAILABLE else "numpy"
    )
    if kernels.NUMBA_DISABLED:
        assert not kernels.NUMBA_AVAILABLE


def test_fallback_module_never_requires_numba():
    """The fallback import graph must stay numba-free — it is the path
    ``pip install repro`` (no extras) runs."""
    from repro.kernels import _numpy

    for name in (
        "peel_to_kcore",
        "components_of_mask",
        "core_numbers",
        "arc_supports",
    ):
        assert callable(getattr(_numpy, name))
        assert callable(getattr(kernels, name))
