"""Regenerate the committed renderer fixtures.

From the repo root::

    PYTHONPATH=src python tests/bench/fixtures/make_fixture_db.py

writes ``grid_history.sqlite`` (a doctored two-run history exercising
every cell status) plus the two golden Markdown files the byte-stability
tests in ``test_report_golden.py`` pin.  Everything here is fixed data —
no clocks, no randomness — so regeneration is idempotent.
"""

from __future__ import annotations

import pathlib

from repro.bench.compare import Waiver, compare_grid_runs
from repro.bench.history import CellRecord, HistoryDB
from repro.bench.report import render_comparison, render_history

FIXTURES = pathlib.Path(__file__).resolve().parent
DB_PATH = FIXTURES / "grid_history.sqlite"
REPORT_GOLDEN = FIXTURES / "grid_report.golden.md"
COMPARE_GOLDEN = FIXTURES / "grid_compare.golden.md"

GRID_NAME = "golden"
CONFIG_HASH = "goldencfg000000000000000000000000"
BASELINE_COMMIT = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
FRESH_COMMIT = "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"

#: The golden compare waives the sum-family service slowdown (so the
#: rendered table shows all of ok / regressed / waived) but leaves the
#: min-family one gating.
WAIVERS = (
    Waiver(
        bench=f"grid:{GRID_NAME}",
        metric="*f=sum*service speedup vs cold",
        reason="fixture: acknowledged slowdown",
    ),
)

SUM_DIGEST = "1111111111111111111111111111111111111111111111111111111111111111"
MIN_DIGEST = "2222222222222222222222222222222222222222222222222222222222222222"


def _cell(f, tier, runs=None, digest=None, status="done", error=None, k=3):
    axes = {
        "graph": "g500x2000", "k": k, "r": 3, "f": f, "backend": "csr",
        "workers": 0, "tier": tier, "eps": 0.1,
    }
    cell_id = f"g500x2000/k{k}/r3/f={f}/b=csr/w0/{tier}"
    done = status == "done"
    return CellRecord(
        cell_id=cell_id,
        axes=axes,
        status=status,
        best_seconds=min(runs) if done else None,
        run_seconds=tuple(runs) if done else (),
        result_digest=digest if done else None,
        error=error,
    )


BASELINE_CELLS = [
    _cell("sum", "cold", (1.0, 1.05, 1.1), SUM_DIGEST),
    _cell("sum", "service", (0.2, 0.21, 0.22), SUM_DIGEST),
    _cell("sum", "index", (0.1, 0.1, 0.1), SUM_DIGEST),
    _cell("min", "cold", (2.0, 2.1, 2.0), MIN_DIGEST),
    _cell("min", "service", (0.5, 0.5, 0.55), MIN_DIGEST),
    _cell(
        "min", "index", status="skipped",
        error="index tier serves the sum aggregator only",
    ),
]

FRESH_CELLS = [
    _cell("sum", "cold", (1.0, 1.02, 1.04), SUM_DIGEST),
    _cell("sum", "service", (0.5, 0.5, 0.5), SUM_DIGEST),  # waived slowdown
    _cell("sum", "index", (0.12, 0.12, 0.13), SUM_DIGEST),
    _cell("min", "cold", (2.0, 2.05, 2.1), MIN_DIGEST),
    _cell("min", "service", (2.0, 2.0, 2.1), MIN_DIGEST),  # gating slowdown
    _cell(
        "min", "index", status="skipped",
        error="index tier serves the sum aggregator only",
    ),
    _cell(
        "min", "cold", status="error",
        error="RuntimeError: fixture blow-up", k=9,
    ),
]


def build_db(path: pathlib.Path) -> None:
    path.unlink(missing_ok=True)
    with HistoryDB(path) as db:
        db.record_run(
            GRID_NAME, CONFIG_HASH, BASELINE_COMMIT,
            "2026-08-01T00:00:00+00:00", BASELINE_CELLS,
        )
        db.record_run(
            GRID_NAME, CONFIG_HASH, FRESH_COMMIT,
            "2026-08-08T00:00:00+00:00", FRESH_CELLS,
        )


def render_report(db: HistoryDB) -> str:
    return render_history(db, grid_name=GRID_NAME)


def render_compare(db: HistoryDB) -> str:
    return render_comparison(
        compare_grid_runs(db, grid_name=GRID_NAME, waivers=WAIVERS)
    )


def main() -> None:
    build_db(DB_PATH)
    with HistoryDB(DB_PATH) as db:
        REPORT_GOLDEN.write_text(render_report(db))
        COMPARE_GOLDEN.write_text(render_compare(db))
    print(f"wrote {DB_PATH}, {REPORT_GOLDEN}, {COMPARE_GOLDEN}")


if __name__ == "__main__":
    main()
