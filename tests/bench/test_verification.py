"""The self-verification harness must pass on clean code and must catch
planted defects."""

from repro.bench.verification import VerificationReport, verify_solvers


def test_clean_run_passes():
    report = verify_solvers(instances=2, base_seed=500)
    assert report.ok
    assert report.checks_run > 20
    assert "all checks passed" in report.render()


def test_report_records_failures():
    report = VerificationReport()
    report.record(True, "fine")
    report.record(False, "broken thing")
    assert not report.ok
    assert report.checks_run == 2
    rendered = report.render()
    assert "1 FAILURES" in rendered
    assert "broken thing" in rendered


def test_cli_verify(capsys):
    from repro.cli import main

    code = main(["verify", "--instances", "1", "--seed", "321"])
    assert code == 0
    assert "all checks passed" in capsys.readouterr().out
