"""Every committed benchmark report validates against the shared schema.

The gating baseline diffs key on a small envelope — ``benchmark``,
``graph``/``graphs`` shape, ``speedup``, ``results_agree`` — that
``benchmarks/bench_report.schema.json`` pins.  This test walks every
committed ``BENCH_*.json`` (and asserts each CI baseline has a live twin),
so an emitter drifting away from the envelope breaks here, not in a
confusing diff-step failure.
"""

import json
import pathlib

import pytest

jsonschema = pytest.importorskip("jsonschema")

REPO = pathlib.Path(__file__).resolve().parents[2]
SCHEMA_PATH = REPO / "benchmarks" / "bench_report.schema.json"
REPORTS = sorted(REPO.glob("BENCH_*.json"))


@pytest.fixture(scope="module")
def validator():
    schema = json.loads(SCHEMA_PATH.read_text())
    cls = jsonschema.validators.validator_for(schema)
    cls.check_schema(schema)
    return cls(schema)


def test_reports_exist():
    assert REPORTS, "no committed BENCH_*.json reports found"
    assert any(p.name.endswith("_ci_baseline.json") for p in REPORTS)


@pytest.mark.parametrize("path", REPORTS, ids=lambda p: p.name)
def test_report_validates(path, validator):
    report = json.loads(path.read_text())
    errors = sorted(validator.iter_errors(report), key=str)
    assert not errors, "\n".join(
        f"{path.name}: {e.json_path}: {e.message}" for e in errors
    )


@pytest.mark.parametrize(
    "path",
    [p for p in REPORTS if p.name.endswith("_ci_baseline.json")],
    ids=lambda p: p.name,
)
def test_ci_baseline_has_live_twin(path):
    twin = path.with_name(path.name.replace("_ci_baseline", ""))
    assert twin.exists(), f"{path.name} has no matching {twin.name}"
    base = json.loads(path.read_text())
    live = json.loads(twin.read_text())
    assert base["benchmark"] == live["benchmark"]


@pytest.mark.parametrize(
    "path",
    [p for p in REPORTS if p.name.endswith("_ci_baseline.json")],
    ids=lambda p: p.name,
)
def test_ci_baselines_assert_correctness(path):
    # A committed baseline recorded with a correctness failure would make
    # the gating diff compare against broken numbers.
    report = json.loads(path.read_text())
    if "results_agree" in report:
        assert report["results_agree"] is True


def test_waiver_file_parses():
    from repro.bench.compare import load_waivers

    waivers = load_waivers(REPO / "benchmarks" / "waivers.json")
    assert isinstance(waivers, tuple)


def test_schema_is_itself_valid_json_schema():
    schema = json.loads(SCHEMA_PATH.read_text())
    jsonschema.validators.validator_for(schema).check_schema(schema)
