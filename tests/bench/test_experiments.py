"""Smoke tests of the experiment harness (quick mode keeps them fast)."""

import pytest

from repro.bench.experiments import EXPERIMENTS, run_experiments
from repro.errors import DatasetError


def test_registry_covers_every_table_and_figure():
    expected = {"table3"} | {f"fig{i}" for i in range(2, 15)} | {
        "case", "substrates",
    }
    assert expected <= set(EXPERIMENTS)


def test_table3_report():
    report = run_experiments("table3", quick=True)
    text = report.render_text()
    assert "Table III" in text
    md = report.render_markdown()
    assert md.startswith("# EXPERIMENTS")


def test_fig2_quick_runs_and_reports():
    report = run_experiments("fig2", quick=True)
    text = report.render_text()
    assert "naive" in text and "improve" in text and "approx" in text
    assert "paper shape" in text


def test_fig10_quick_skips_infeasible_cells():
    report = run_experiments("fig10", quick=True)
    panel = report.reports[0].panels[0]
    # s = 5 at k = 4 is feasible (5 >= k+1); nothing crashes; the sweep
    # carries both series.
    assert set(panel.series) == {"random", "greedy"}


def test_fig12_quick_reports_values():
    report = run_experiments("fig12", quick=True)
    panel = report.reports[0].panels[0]
    for series in panel.series.values():
        for value in series:
            assert value is None or isinstance(value, float)


def test_unknown_experiment_rejected():
    with pytest.raises(DatasetError):
        run_experiments("fig99")


def test_case_study_report():
    report = run_experiments("case", quick=True)
    assert "[min]" in report.render_text()
