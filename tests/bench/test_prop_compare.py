"""Property-based pins on the comparator rule (satellite of the grid
harness).

Three laws of :func:`repro.bench.compare.compare_value` hold for *every*
tolerance/band/value combination, not just the cases the unit tests
enumerate:

* determinism — the verdict is a pure function of its inputs;
* improvement asymmetry — a fresh value at least as good as its baseline
  is never flagged, however tight the tolerance;
* monotonicity — worsening the fresh value can only move the verdict
  from ok to regressed, never back.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.bench.compare import MAX_NOISE_BAND, compare_value  # noqa: E402

finite = dict(allow_nan=False, allow_infinity=False)

tolerances = st.floats(min_value=0.05, max_value=1.0, **finite)
bands = st.floats(min_value=0.0, max_value=5.0, **finite)
values = st.floats(min_value=1e-6, max_value=1e6, **finite)
directions = st.booleans()


@given(
    fresh=values, baseline=values, tolerance=tolerances, band=bands,
    higher=directions,
)
@settings(max_examples=300)
def test_verdict_is_deterministic(fresh, baseline, tolerance, band, higher):
    first = compare_value(
        "m", fresh, baseline, tolerance, band, higher_is_better=higher
    )
    second = compare_value(
        "m", fresh, baseline, tolerance, band, higher_is_better=higher
    )
    assert first == second
    assert first.status in ("ok", "regressed")


@given(
    baseline=values, improvement=st.floats(min_value=0.0, max_value=10.0,
                                           **finite),
    tolerance=tolerances, band=bands, higher=directions,
)
@settings(max_examples=300)
def test_improvement_is_never_flagged(
    baseline, improvement, tolerance, band, higher
):
    # "At least as good": >= baseline when higher is better, <= when
    # lower is better.  Faster runs must never fail the build.
    if higher:
        fresh = baseline * (1.0 + improvement)
    else:
        fresh = baseline / (1.0 + improvement)
    verdict = compare_value(
        "m", fresh, baseline, tolerance, band, higher_is_better=higher
    )
    assert verdict.status == "ok"


@given(
    baseline=values, tolerance=tolerances, band=bands,
    margins=st.tuples(
        st.floats(min_value=0.0, max_value=0.999, **finite),
        st.floats(min_value=0.0, max_value=0.999, **finite),
    ),
)
@settings(max_examples=300)
def test_verdict_is_monotone_in_regression_margin(
    baseline, tolerance, band, margins
):
    # worse margin = larger fraction of the baseline lost.
    better, worse = sorted(margins)
    v_better = compare_value(
        "m", baseline * (1.0 - better), baseline, tolerance, band
    )
    v_worse = compare_value(
        "m", baseline * (1.0 - worse), baseline, tolerance, band
    )
    if v_better.status == "regressed":
        assert v_worse.status == "regressed"


@given(baseline=values, tolerance=tolerances, band=bands)
@settings(max_examples=300)
def test_threshold_respects_the_band_cap(baseline, tolerance, band):
    verdict = compare_value("m", baseline, baseline, tolerance, band)
    floor = baseline * tolerance / (1.0 + MAX_NOISE_BAND)
    assert verdict.threshold >= floor - 1e-9 * baseline


@given(
    fresh=values, baseline=values,
    bad_tolerance=st.one_of(
        st.floats(max_value=0.0, **finite),
        st.floats(min_value=1.0 + 1e-9, max_value=100.0, **finite),
    ),
)
@settings(max_examples=100)
def test_invalid_tolerance_always_raises(fresh, baseline, bad_tolerance):
    with pytest.raises(ValueError):
        compare_value("m", fresh, baseline, tolerance=bad_tolerance)
