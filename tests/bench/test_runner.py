"""Unit tests for the sweep runner and the injectable clock.

No test here sleeps: every timing assertion pins the scripted durations
of a :class:`~repro.bench.clock.ManualClock` instead of trusting the
wall clock, which is the whole point of the clock seam.
"""

import pytest

from repro.bench.clock import ManualClock, perf_clock
from repro.bench.runner import SweepResult, run_sweep, time_call


# ----------------------------------------------------------------------
# ManualClock
# ----------------------------------------------------------------------
def test_manual_clock_brackets_scripted_durations():
    clock = ManualClock([0.25, 1.5])
    assert clock() == 0.0  # start of first pair
    assert clock() == 0.25  # stop: advanced by the first duration
    assert clock() == 0.25
    assert clock() == 1.75
    # Durations cycle.
    assert clock() == 1.75
    assert clock() == 2.0


def test_manual_clock_advance_and_start():
    clock = ManualClock([1.0], start=10.0)
    assert clock.now == 10.0
    clock.advance(5.0)
    assert clock() == 15.0
    assert clock() == 16.0


def test_manual_clock_rejects_empty_script():
    with pytest.raises(ValueError):
        ManualClock([])


def test_perf_clock_is_monotonic():
    a, b = perf_clock(), perf_clock()
    assert b >= a


# ----------------------------------------------------------------------
# time_call
# ----------------------------------------------------------------------
def test_time_call_returns_result():
    seconds, value = time_call(lambda: sum(range(1000)))
    assert value == 499500
    assert seconds >= 0


def test_time_call_reports_scripted_seconds_exactly():
    clock = ManualClock([0.125])
    seconds, value = time_call(lambda: "answer", clock=clock)
    assert seconds == 0.125
    assert value == "answer"


# ----------------------------------------------------------------------
# run_sweep
# ----------------------------------------------------------------------
def test_run_sweep_time_mode_pins_durations():
    # slow and fast alternate inside each axis point, so the script
    # interleaves their durations: (slow, fast) x 3 points.
    clock = ManualClock([0.004, 0.001])
    result = run_sweep(
        "demo", "x", [1, 2, 3],
        algorithms={"slow": lambda x: None, "fast": lambda x: None},
        clock=clock,
    )
    assert result.series["slow"] == [0.004, 0.004, 0.004]
    assert result.series["fast"] == [0.001, 0.001, 0.001]


def test_run_sweep_value_mode():
    result = run_sweep(
        "demo", "x", [2, 4],
        algorithms={"square": lambda x: x * x},
        measure="value",
    )
    assert result.series["square"] == [4.0, 16.0]


def test_run_sweep_skip_consumes_no_clock_reads():
    clock = ManualClock([0.5])
    result = run_sweep(
        "demo", "x", [1, 2, 3],
        algorithms={"alg": lambda x: x},
        measure="value",
        skip=lambda name, x: x == 2,
        clock=clock,
    )
    assert result.series["alg"] == [1.0, None, 3.0]
    # Two timed calls ran; the skipped point never touched the clock.
    assert clock.now == 1.0


def test_render_text_and_markdown():
    result = SweepResult("My Panel", "k", [1, 2])
    result.add_point("a", 0.5)
    result.add_point("a", None)
    result.notes.append("missing point = skipped")
    text = result.render_text()
    assert "My Panel" in text and "-" in text and "note:" in text
    md = result.render_markdown()
    assert md.startswith("### My Panel")
    assert "| k | a |" in md
