"""Unit tests for the sweep runner."""

import time

from repro.bench.runner import SweepResult, run_sweep, time_call


def test_time_call_returns_result():
    seconds, value = time_call(lambda: sum(range(1000)))
    assert value == 499500
    assert seconds >= 0


def test_run_sweep_time_mode():
    result = run_sweep(
        "demo", "x", [1, 2, 3],
        algorithms={"slow": lambda x: time.sleep(0.001 * x), "fast": lambda x: None},
    )
    assert set(result.series) == {"slow", "fast"}
    assert len(result.series["slow"]) == 3
    assert all(v is not None for v in result.series["slow"])


def test_run_sweep_value_mode():
    result = run_sweep(
        "demo", "x", [2, 4],
        algorithms={"square": lambda x: x * x},
        measure="value",
    )
    assert result.series["square"] == [4.0, 16.0]


def test_run_sweep_skip():
    result = run_sweep(
        "demo", "x", [1, 2, 3],
        algorithms={"alg": lambda x: x},
        measure="value",
        skip=lambda name, x: x == 2,
    )
    assert result.series["alg"] == [1.0, None, 3.0]


def test_render_text_and_markdown():
    result = SweepResult("My Panel", "k", [1, 2])
    result.add_point("a", 0.5)
    result.add_point("a", None)
    result.notes.append("missing point = skipped")
    text = result.render_text()
    assert "My Panel" in text and "-" in text and "note:" in text
    md = result.render_markdown()
    assert md.startswith("### My Panel")
    assert "| k | a |" in md
