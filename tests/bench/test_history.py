"""Unit tests for the sqlite grid-run history store."""

import pytest

from repro.bench.history import CellRecord, HistoryDB


def _cell(cell_id="g10x20/k2/r1/f=sum/b=csr/w0/cold", **overrides):
    base = dict(
        cell_id=cell_id,
        axes={"graph": "g10x20", "k": 2, "tier": "cold"},
        status="done",
        best_seconds=0.5,
        run_seconds=(0.6, 0.5, 0.7),
        result_digest="abc123",
    )
    base.update(overrides)
    return CellRecord(**base)


@pytest.fixture
def db(tmp_path):
    with HistoryDB(tmp_path / "history.sqlite") as history:
        yield history


def test_record_and_read_back_roundtrip(db):
    run_id = db.record_run(
        grid_name="ci",
        config_hash="deadbeef",
        commit_sha="c0ffee",
        started_at="2026-01-01T00:00:00+00:00",
        cells=[_cell()],
        meta={"host": "runner-1"},
    )
    runs = db.runs()
    assert [r.run_id for r in runs] == [run_id]
    assert runs[0].grid_name == "ci"
    assert runs[0].commit_sha == "c0ffee"
    assert runs[0].meta == {"host": "runner-1"}
    cells = db.run_cells(run_id)
    cell = cells["g10x20/k2/r1/f=sum/b=csr/w0/cold"]
    assert cell.status == "done"
    assert cell.best_seconds == 0.5
    assert cell.run_seconds == (0.6, 0.5, 0.7)
    assert cell.result_digest == "abc123"
    assert cell.axes == {"graph": "g10x20", "k": 2, "tier": "cold"}


def test_history_is_append_only_across_runs(db):
    first = db.record_run("ci", "h", "commit-a", "t0", [_cell()])
    second = db.record_run(
        "ci", "h", "commit-b", "t1", [_cell(best_seconds=0.9)]
    )
    assert second > first
    # The old run's numbers are untouched by the new recording.
    assert db.run_cells(first)[_cell().cell_id].best_seconds == 0.5
    assert db.run_cells(second)[_cell().cell_id].best_seconds == 0.9


def test_latest_run_filters(db):
    db.record_run("ci", "hash1", "commit-a", "t0", [])
    db.record_run("ci", "hash1", "commit-b", "t1", [])
    db.record_run("full", "hash2", "commit-b", "t2", [])
    assert db.latest_run().grid_name == "full"
    assert db.latest_run(grid_name="ci").commit_sha == "commit-b"
    assert db.latest_run(config_hash="hash1").commit_sha == "commit-b"
    baseline = db.latest_run(grid_name="ci", exclude_commit="commit-b")
    assert baseline.commit_sha == "commit-a"
    assert db.latest_run(grid_name="nope") is None


def test_run_cells_preserve_recording_order(db):
    cells = [_cell(cell_id=f"cell-{i}") for i in (3, 1, 2)]
    run_id = db.record_run("ci", "h", "c", "t", cells)
    assert list(db.run_cells(run_id)) == ["cell-3", "cell-1", "cell-2"]


def test_cell_history_walks_runs_oldest_first(db):
    db.record_run("ci", "h", "commit-a", "t0", [_cell(best_seconds=1.0)])
    db.record_run("ci", "h", "commit-b", "t1", [_cell(best_seconds=2.0)])
    db.record_run("other", "h2", "commit-c", "t2", [_cell(best_seconds=9.0)])
    trail = db.cell_history(_cell().cell_id, grid_name="ci")
    assert [(run.commit_sha, cell.best_seconds) for run, cell in trail] == [
        ("commit-a", 1.0),
        ("commit-b", 2.0),
    ]


def test_error_and_skipped_cells_roundtrip(db):
    run_id = db.record_run(
        "ci", "h", "c", "t",
        [
            _cell(
                cell_id="boom", status="error", best_seconds=None,
                run_seconds=(), result_digest=None,
                error="ValueError: nope",
            ),
            _cell(
                cell_id="nope", status="skipped", best_seconds=None,
                run_seconds=(), result_digest=None, error="inapplicable",
            ),
        ],
    )
    cells = db.run_cells(run_id)
    assert cells["boom"].status == "error"
    assert cells["boom"].error == "ValueError: nope"
    assert cells["boom"].best_seconds is None
    assert cells["nope"].status == "skipped"


def test_noise_is_relative_median_spread():
    assert _cell(run_seconds=(1.0, 1.2, 1.1)).noise == pytest.approx(0.1)
    assert _cell(run_seconds=(1.0,)).noise == 0.0
    assert _cell(run_seconds=()).noise == 0.0
    assert _cell(run_seconds=(0.0, 1.0)).noise == 0.0  # zero best: no band
