"""Unit tests for the gating comparator.

The acceptance scenario for the regression harness lives here: against a
doctored history database, an injected synthetic slowdown must FAIL the
compare, while best-of-N scatter inside the noise band must stay green.
"""

import json

import pytest

from repro.bench.compare import (
    Waiver,
    apply_waivers,
    compare_grid_runs,
    compare_ratio_metrics,
    compare_value,
    load_waivers,
)
from repro.bench.history import CellRecord, HistoryDB


# ----------------------------------------------------------------------
# compare_value: the single-metric rule
# ----------------------------------------------------------------------
def test_compare_value_passes_within_tolerance():
    assert compare_value("m", fresh=8.0, baseline=10.0).status == "ok"


def test_compare_value_flags_past_tolerance():
    verdict = compare_value("m", fresh=6.9, baseline=10.0)
    assert verdict.status == "regressed"
    assert verdict.threshold == pytest.approx(7.0)


def test_noise_band_widens_allowance():
    assert compare_value("m", 6.9, 10.0, band=0.0).status == "regressed"
    assert compare_value("m", 6.9, 10.0, band=0.1).status == "ok"


def test_noise_band_is_capped():
    # A 900% spread must not excuse an arbitrary slowdown: the band caps
    # at MAX_NOISE_BAND, so threshold never drops below tol/(1+cap).
    verdict = compare_value("m", 4.0, 10.0, band=9.0)
    assert verdict.status == "regressed"
    assert verdict.threshold == pytest.approx(10.0 * 0.7 / 1.5)


def test_lower_is_better_mirrors_the_rule():
    ok = compare_value("s", 1.3, 1.0, higher_is_better=False)
    bad = compare_value("s", 1.5, 1.0, higher_is_better=False)
    assert ok.status == "ok"
    assert bad.status == "regressed"
    assert bad.threshold == pytest.approx(1.0 / 0.7)


def test_compare_value_validates_inputs():
    with pytest.raises(ValueError, match="tolerance"):
        compare_value("m", 1.0, 1.0, tolerance=0.0)
    with pytest.raises(ValueError, match="tolerance"):
        compare_value("m", 1.0, 1.0, tolerance=1.5)
    with pytest.raises(ValueError, match="band"):
        compare_value("m", 1.0, 1.0, band=-0.1)


# ----------------------------------------------------------------------
# Waivers
# ----------------------------------------------------------------------
def test_load_waivers_missing_and_none_paths(tmp_path):
    assert load_waivers(None) == ()
    assert load_waivers(tmp_path / "absent.json") == ()


def test_load_waivers_requires_reason(tmp_path):
    path = tmp_path / "waivers.json"
    path.write_text(
        json.dumps({"waivers": [{"bench": "x", "metric": "y", "reason": ""}]})
    )
    with pytest.raises(ValueError, match="no reason"):
        load_waivers(path)


def test_waiver_flips_regression_to_waived(tmp_path):
    path = tmp_path / "waivers.json"
    path.write_text(
        json.dumps(
            {
                "waivers": [
                    {
                        "bench": "bench_*",
                        "metric": "pooled*",
                        "reason": "known slow runner, remove after #42",
                    }
                ]
            }
        )
    )
    report = compare_ratio_metrics(
        "bench_serving",
        [("pooled vs cold speedup", 1.0, 10.0)],
        waivers=load_waivers(path),
    )
    assert report.verdict == "PASS"
    assert report.exit_code == 0
    assert [m.status for m in report.metrics] == ["waived"]
    assert "known slow runner" in report.metrics[0].detail


def test_waiver_must_match_both_bench_and_metric():
    report = compare_ratio_metrics(
        "bench_serving",
        [("pooled vs cold speedup", 1.0, 10.0)],
        waivers=(Waiver(bench="bench_index", metric="*", reason="r"),),
    )
    assert report.verdict == "FAIL"


def test_apply_waivers_leaves_ok_metrics_alone():
    report = compare_ratio_metrics("b", [("m", 10.0, 10.0)])
    apply_waivers(report, (Waiver(bench="*", metric="*", reason="r"),))
    assert [m.status for m in report.metrics] == ["ok"]


# ----------------------------------------------------------------------
# compare_ratio_metrics: the per-bench gating diff
# ----------------------------------------------------------------------
def test_ratio_metrics_gate_on_regression():
    report = compare_ratio_metrics("b", [("fast", 9.0, 10.0), ("slow", 2.0, 10.0)])
    assert report.verdict == "FAIL"
    assert report.exit_code == 1
    assert [m.metric for m in report.regressions] == ["slow"]


def test_hard_failures_gate_like_regressions():
    report = compare_ratio_metrics(
        "b", [], failures=["results disagree with oracle"]
    )
    assert report.verdict == "FAIL"
    assert report.metrics[0].fresh is None


# ----------------------------------------------------------------------
# compare_grid_runs against doctored history databases
# ----------------------------------------------------------------------
GRAPH = "g100x400"


def _cell(tier, runs, digest="same-answer", workers=0, status="done"):
    axes = {
        "graph": GRAPH, "k": 4, "r": 5, "f": "sum", "backend": "csr",
        "workers": workers, "tier": tier, "eps": 0.1,
    }
    cell_id = f"{GRAPH}/k4/r5/f=sum/b=csr/w{workers}/{tier}"
    done = status == "done"
    return CellRecord(
        cell_id=cell_id,
        axes=axes,
        status=status,
        best_seconds=min(runs) if done else None,
        run_seconds=tuple(runs) if done else (),
        result_digest=digest if done else None,
        error=None if done else "RuntimeError: boom",
    )


def _record(db_path, commit, cells, config_hash="cfg", started="t0"):
    with HistoryDB(db_path) as db:
        db.record_run(
            grid_name="ci", config_hash=config_hash, commit_sha=commit,
            started_at=started, cells=cells,
        )


@pytest.fixture
def baseline_db(tmp_path):
    """Doctored history: cold takes ~1s, the service tier is 5x faster."""
    path = tmp_path / "baseline.sqlite"
    _record(
        path, "baseline-commit",
        [_cell("cold", (1.0, 1.02, 1.05)), _cell("service", (0.2, 0.21, 0.2))],
    )
    return path


def test_steady_state_passes(tmp_path, baseline_db):
    fresh = tmp_path / "fresh.sqlite"
    _record(
        fresh, "fresh-commit",
        [_cell("cold", (0.9, 0.92, 0.91)), _cell("service", (0.18, 0.19, 0.18))],
    )
    report = compare_grid_runs(fresh, baseline=baseline_db)
    assert report.verdict == "PASS"
    ratios = [m for m in report.metrics if "speedup vs cold" in m.metric]
    assert len(ratios) == 1
    assert ratios[0].fresh == pytest.approx(5.0)


def test_injected_synthetic_regression_fails(tmp_path, baseline_db):
    # The serving tier suddenly only 1.5x faster than cold: CI must fail.
    fresh = tmp_path / "fresh.sqlite"
    _record(
        fresh, "fresh-commit",
        [_cell("cold", (0.9, 0.92, 0.91)), _cell("service", (0.6, 0.61, 0.6))],
    )
    report = compare_grid_runs(fresh, baseline=baseline_db)
    assert report.verdict == "FAIL"
    assert report.exit_code == 1
    (metric,) = report.regressions
    assert metric.metric.endswith("speedup vs cold")
    assert metric.fresh == pytest.approx(1.5)


def test_best_of_n_scatter_inside_noise_band_stays_green(tmp_path, baseline_db):
    # Fresh ratio 3.33 sits below the band-free threshold (5.0*0.7 = 3.5)
    # but the service cell's repeats scatter ~15%, and the band widens
    # the allowance to 3.5/1.15 ~ 3.04: still green.
    fresh = tmp_path / "fresh.sqlite"
    _record(
        fresh, "fresh-commit",
        [_cell("cold", (1.0, 1.0, 1.0)), _cell("service", (0.3, 0.345, 0.36))],
    )
    report = compare_grid_runs(fresh, baseline=baseline_db)
    assert report.verdict == "PASS", [
        (m.metric, m.status) for m in report.metrics
    ]
    (ratio,) = [m for m in report.metrics if "speedup" in m.metric]
    assert ratio.fresh < ratio.baseline * 0.7  # band did the saving
    assert ratio.status == "ok"


def test_grid_waiver_flips_fail_to_pass(tmp_path, baseline_db):
    fresh = tmp_path / "fresh.sqlite"
    _record(
        fresh, "fresh-commit",
        [_cell("cold", (0.9,)), _cell("service", (0.6,))],
    )
    waiver = Waiver(
        bench="grid:ci", metric="*service speedup vs cold", reason="accepted"
    )
    report = compare_grid_runs(fresh, baseline=baseline_db, waivers=(waiver,))
    assert report.verdict == "PASS"
    assert [m.status for m in report.metrics] == ["waived"]


def test_errored_fresh_cell_fails(tmp_path, baseline_db):
    fresh = tmp_path / "fresh.sqlite"
    _record(
        fresh, "fresh-commit",
        [_cell("cold", (0.9,)), _cell("service", (), status="error")],
    )
    report = compare_grid_runs(fresh, baseline=baseline_db)
    assert report.verdict == "FAIL"
    assert any("status" in m.metric for m in report.regressions)
    assert any("boom" in m.detail for m in report.regressions)


def test_cross_engine_digest_mismatch_fails(tmp_path, baseline_db):
    fresh = tmp_path / "fresh.sqlite"
    _record(
        fresh, "fresh-commit",
        [
            _cell("cold", (0.9,), digest="answer-a"),
            _cell("service", (0.18,), digest="answer-b"),
        ],
    )
    report = compare_grid_runs(fresh, baseline=baseline_db)
    assert report.verdict == "FAIL"
    assert any("answers diverge" in m.metric for m in report.regressions)


def test_missing_baseline_is_bootstrap_pass(tmp_path):
    fresh = tmp_path / "fresh.sqlite"
    _record(fresh, "fresh-commit", [_cell("cold", (1.0,))])
    report = compare_grid_runs(fresh)
    assert report.verdict == "PASS"
    assert any("bootstrap" in note for note in report.notes)


def test_config_hash_mismatch_never_compares(tmp_path, baseline_db):
    # A reshaped grid must not be judged against old-shape history.
    fresh = tmp_path / "fresh.sqlite"
    _record(
        fresh, "fresh-commit",
        [_cell("cold", (0.9,)), _cell("service", (0.6,))],
        config_hash="other-cfg",
    )
    report = compare_grid_runs(fresh, baseline=baseline_db)
    assert report.verdict == "PASS"
    assert any("bootstrap" in note for note in report.notes)


def test_absolute_mode_gates_on_raw_seconds(tmp_path, baseline_db):
    # Ratios identical to baseline, but everything is 2x slower in wall
    # time: only --absolute notices.
    fresh = tmp_path / "fresh.sqlite"
    _record(
        fresh, "fresh-commit",
        [_cell("cold", (2.0, 2.0, 2.0)), _cell("service", (0.4, 0.4, 0.4))],
    )
    relative = compare_grid_runs(fresh, baseline=baseline_db)
    assert relative.verdict == "PASS"
    absolute = compare_grid_runs(fresh, baseline=baseline_db, absolute=True)
    assert absolute.verdict == "FAIL"
    assert any(m.metric.endswith("seconds") for m in absolute.regressions)


def test_newly_skipped_cell_is_a_note_not_a_failure(tmp_path, baseline_db):
    fresh = tmp_path / "fresh.sqlite"
    _record(
        fresh, "fresh-commit",
        [
            _cell("cold", (0.9,)),
            CellRecord(
                cell_id=f"{GRAPH}/k4/r5/f=sum/b=csr/w0/service",
                axes={}, status="skipped", error="inapplicable",
            ),
        ],
    )
    report = compare_grid_runs(fresh, baseline=baseline_db)
    assert report.verdict == "PASS"
    assert any("now skipped" in note for note in report.notes)


def test_self_baseline_from_same_db_excludes_fresh_commit(tmp_path):
    path = tmp_path / "history.sqlite"
    _record(path, "old-commit", [_cell("cold", (1.0,)), _cell("service", (0.2,))])
    _record(path, "new-commit", [_cell("cold", (1.0,)), _cell("service", (0.7,))])
    report = compare_grid_runs(path)
    assert report.context["baseline commit"] == "old-commit"
    assert report.verdict == "FAIL"
