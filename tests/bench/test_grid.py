"""Unit tests for the declarative experiment grid and its runner."""

import pytest

from repro.bench.clock import ManualClock
from repro.bench.grid import (
    GRIDS,
    CellOutcome,
    GridSpec,
    grid_spec,
    run_grid,
)
from repro.bench.history import HistoryDB

TINY = GridSpec(
    name="tiny",
    graphs=((60, 180),),
    ks=(2,),
    rs=(2,),
    aggregators=("sum", "min"),
    backends=("csr",),
    workers=(0, 1),
    tiers=("cold", "service", "index"),
    repeats=2,
)


# ----------------------------------------------------------------------
# Spec: hashing, enumeration, skip rules
# ----------------------------------------------------------------------
def test_config_hash_is_deterministic_and_shape_sensitive():
    assert TINY.config_hash() == TINY.config_hash()
    import dataclasses

    widened = dataclasses.replace(TINY, ks=(2, 3))
    renamed = dataclasses.replace(TINY, name="tiny2")
    assert widened.config_hash() != TINY.config_hash()
    assert renamed.config_hash() != TINY.config_hash()


def test_cells_enumerate_deterministically():
    ids = [cell.cell_id for cell in TINY.cells()]
    assert ids == [cell.cell_id for cell in TINY.cells()]
    assert len(ids) == len(set(ids)) == 2 * 2 * 3
    assert "g60x180/k2/r2/f=sum/b=csr/w0/cold" in ids


def test_skip_reasons():
    by_id = {cell.cell_id: cell for cell in TINY.cells()}
    assert by_id["g60x180/k2/r2/f=sum/b=csr/w0/cold"].skip_reason() is None
    assert by_id["g60x180/k2/r2/f=sum/b=csr/w0/index"].skip_reason() is None
    # Workers shard through the service tier only.
    assert by_id["g60x180/k2/r2/f=sum/b=csr/w1/cold"].skip_reason()
    assert by_id["g60x180/k2/r2/f=sum/b=csr/w1/service"].skip_reason() is None
    # The precomputed index serves sum only.
    assert by_id["g60x180/k2/r2/f=min/b=csr/w0/index"].skip_reason()


def test_named_grids_resolve():
    assert grid_spec("smoke").name == "smoke"
    assert grid_spec("ci", repeats=1).repeats == 1
    assert grid_spec("ci").repeats == GRIDS["ci"].repeats  # original intact
    with pytest.raises(ValueError, match="unknown grid"):
        grid_spec("nope")


def test_timed_grids_exclude_avg():
    # avg's local-search solver runs minutes per cell; it must never be
    # on a gating grid (see the GRIDS comment).
    for spec in GRIDS.values():
        assert "avg" not in spec.aggregators


# ----------------------------------------------------------------------
# run_grid with an injected fake runner: pure bookkeeping
# ----------------------------------------------------------------------
def test_run_grid_records_best_of_n_and_skips(tmp_path):
    def fake_runner(cell):
        return CellOutcome((0.3, 0.1, 0.2), result_digest=f"d-{cell.k}")

    with HistoryDB(tmp_path / "h.sqlite") as db:
        run_id = run_grid(
            TINY, db, commit="abc", started_at="t0", runner=fake_runner
        )
        cells = db.run_cells(run_id)
    assert set(cells) == {c.cell_id for c in TINY.cells()}
    done = [c for c in cells.values() if c.status == "done"]
    skipped = [c for c in cells.values() if c.status == "skipped"]
    assert {c.skip_reason() is None for c in TINY.cells()} == {True, False}
    assert len(done) == sum(
        1 for c in TINY.cells() if c.skip_reason() is None
    )
    assert all(c.best_seconds == 0.1 for c in done)
    assert all(c.run_seconds == (0.3, 0.1, 0.2) for c in done)
    assert all(c.error for c in skipped)


def test_run_grid_records_errors_without_raising(tmp_path):
    def exploding_runner(cell):
        if cell.aggregator == "min":
            raise RuntimeError("solver fell over")
        return CellOutcome((0.1,), result_digest="ok")

    with HistoryDB(tmp_path / "h.sqlite") as db:
        run_id = run_grid(
            TINY, db, commit="abc", started_at="t0", runner=exploding_runner
        )
        cells = db.run_cells(run_id)
    errored = [c for c in cells.values() if c.status == "error"]
    assert errored
    assert all("RuntimeError: solver fell over" in c.error for c in errored)
    assert any(c.status == "done" for c in cells.values())


def test_run_grid_logs_runnable_cells_only(tmp_path):
    lines = []
    run_grid(
        TINY,
        str(tmp_path / "h.sqlite"),
        commit="abc",
        started_at="t0",
        runner=lambda cell: CellOutcome((0.1,)),
        log=lines.append,
    )
    runnable = sum(1 for c in TINY.cells() if c.skip_reason() is None)
    assert len(lines) == runnable
    assert all(line.startswith("grid[tiny]") for line in lines)


# ----------------------------------------------------------------------
# The real executor, under a manual clock: no wall-time dependence
# ----------------------------------------------------------------------
def test_executor_smoke_with_manual_clock(tmp_path):
    import dataclasses

    spec = dataclasses.replace(
        TINY,
        graphs=((40, 80),),
        aggregators=("sum",),
        workers=(0,),
        tiers=("cold", "service"),
        repeats=3,
    )
    clock = ManualClock([0.5, 0.25, 0.125])
    with HistoryDB(tmp_path / "h.sqlite") as db:
        run_id = run_grid(
            spec, db, commit="abc", started_at="t0", clock=clock
        )
        cells = db.run_cells(run_id)
    done = [c for c in cells.values() if c.status == "done"]
    assert len(done) == 2
    for cell in done:
        assert cell.run_seconds == (0.5, 0.25, 0.125)
        assert cell.best_seconds == 0.125
    # Engine parity: cold and served answers digest identically.
    digests = {c.result_digest for c in done}
    assert len(digests) == 1 and None not in digests
