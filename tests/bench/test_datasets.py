"""Unit tests for the benchmark dataset layer."""

from repro.bench.datasets import (
    FIGURE_DATASETS,
    LARGE,
    SMALL,
    dataset_statistics_table,
    default_k,
    get_dataset,
    k_sweep,
)


def test_grouping_covers_table3():
    assert set(SMALL) | set(LARGE) == {
        "domainpub", "email", "dblp", "youtube", "orkut", "livejournal",
        "friendster",
    }
    assert set(FIGURE_DATASETS) == (set(SMALL) | set(LARGE)) - {"domainpub"}


def test_memoisation():
    a = get_dataset("domainpub")
    b = get_dataset("domainpub")
    assert a is b


def test_default_k_matches_paper_grouping():
    assert default_k("email") == 4
    assert default_k("orkut") == 8  # scaled stand-in for the paper's 40


def test_k_sweep_shapes():
    assert k_sweep("email") == (4, 6, 8, 10)
    assert k_sweep("friendster") == (8, 12, 16, 20)


def test_statistics_table_renders():
    table = dataset_statistics_table()
    assert "Table III" in table
    for name in SMALL + LARGE:
        assert name in table
