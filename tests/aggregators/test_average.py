"""Unit tests for the average aggregator, including the paper's Theorem 2
counterexamples (non-submodularity, non-monotonicity of g)."""

import pytest

from repro.aggregators.average import Average
from repro.core.kcore import is_kcore_subset
from repro.errors import AggregatorError
from repro.graphs.components import is_connected_subset
from repro.utils.stats import SubsetStats


def test_avg_value(triangle):
    assert Average().value(triangle, [0, 1, 2]) == pytest.approx(2.0)
    assert Average().value(triangle, [2]) == 3.0


def test_flags_match_table1():
    agg = Average()
    assert agg.np_hard_unconstrained  # Theorem 1
    assert agg.np_hard_constrained
    assert not agg.is_size_proportional
    assert not agg.decreases_under_removal
    assert not agg.is_node_dominated


def _g(graph, subset, k):
    """The paper's objective g(H) = 1[delta(H) >= k] * f(H)."""
    if not subset or not is_kcore_subset(graph, subset, k):
        return 0.0
    return Average().value(graph, subset)


def test_objective_not_submodular_on_figure1(figure1):
    # Theorem 2's structure with our weights: g(A) + g(B) < g(A|B) + g(A&B)
    # for A = {v5}, B = {v6, v7} (ids 4, {5, 6}).
    a, b = {4}, {5, 6}
    lhs = _g(figure1, a, 2) + _g(figure1, b, 2)
    rhs = _g(figure1, a | b, 2) + _g(figure1, a & b, 2)
    assert lhs < rhs  # 0 < avg of the {v5,v6,v7} triangle


def test_objective_not_monotone_on_figure1(figure1):
    # Increasing direction: adding vertices raises g ...
    small, grown = {4}, {4, 5, 6}
    assert _g(figure1, small, 2) < _g(figure1, grown, 2)
    # ... and decreasing direction: supersets can lower g.
    high, lower = {5, 6, 10}, {4, 5, 6, 10}
    assert is_connected_subset(figure1, high)
    assert _g(figure1, high, 2) > _g(figure1, lower, 2)


def test_empty_rejected():
    with pytest.raises(AggregatorError):
        Average().from_stats(SubsetStats.empty())
