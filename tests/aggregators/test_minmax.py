"""Unit tests for min/max aggregators."""

import pytest

from repro.aggregators.minmax import Maximum, Minimum
from repro.errors import AggregatorError
from repro.utils.stats import SubsetStats


def test_min_value(triangle):
    assert Minimum().value(triangle, [0, 1, 2]) == 1.0
    assert Minimum().value(triangle, [1, 2]) == 2.0


def test_max_value(triangle):
    assert Maximum().value(triangle, [0, 1, 2]) == 3.0
    assert Maximum().value(triangle, [0, 1]) == 2.0


def test_flags_match_table1():
    mn, mx = Minimum(), Maximum()
    assert mn.is_node_dominated and mx.is_node_dominated
    assert not mn.np_hard_unconstrained and not mx.np_hard_unconstrained
    assert mn.np_hard_constrained and mx.np_hard_constrained
    assert not mn.decreases_under_removal
    assert not mx.decreases_under_removal
    assert mx.is_size_proportional
    assert not mn.is_size_proportional


def test_from_stats():
    stats = SubsetStats(3, 6.0, 1.0, 3.0)
    assert Minimum().from_stats(stats) == 1.0
    assert Maximum().from_stats(stats) == 3.0


def test_empty_set_rejected(triangle):
    with pytest.raises(AggregatorError):
        Minimum().value(triangle, [])
    with pytest.raises(AggregatorError):
        Maximum().from_stats(SubsetStats.empty())


def test_names():
    assert Minimum().name == "min"
    assert Maximum().name == "max"
