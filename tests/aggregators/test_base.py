"""The Aggregator interface contract."""

import pytest

from repro.aggregators.registry import available_aggregators, get_aggregator
from repro.errors import AggregatorError
from repro.utils.stats import SubsetStats


def _all_instances():
    return [get_aggregator(name) for name in available_aggregators()
            if not name.startswith("test-")]


def test_every_aggregator_evaluates_value(triangle):
    for aggregator in _all_instances():
        value = aggregator.value(triangle, [0, 1, 2])
        assert isinstance(value, float)


def test_every_aggregator_rejects_empty(triangle):
    for aggregator in _all_instances():
        with pytest.raises(AggregatorError):
            aggregator.value(triangle, [])


def test_value_agrees_with_from_stats(triangle):
    stats = SubsetStats(3, 6.0, 1.0, 3.0)
    total = triangle.total_weight
    for aggregator in _all_instances():
        direct = aggregator.value(triangle, [0, 1, 2])
        via_stats = aggregator.from_stats(stats, graph_total=total)
        assert direct == pytest.approx(via_stats), aggregator.name


def test_decreasing_flag_is_truthful(two_triangles):
    """Every aggregator claiming Corollary 2 must actually decrease when a
    vertex leaves (checked over all subsets of a small graph)."""
    subsets = [
        ([3, 4, 5], [3, 4]),
        ([0, 1, 2], [1, 2]),
        ([3, 4], [4]),
    ]
    for aggregator in _all_instances():
        if not aggregator.decreases_under_removal:
            continue
        for before, after in subsets:
            assert aggregator.value(two_triangles, before) > aggregator.value(
                two_triangles, after
            ), aggregator.name


def test_size_proportional_flag_is_truthful(two_triangles):
    """Definition 7: f(H) <= f(H') for H subset of H'."""
    chains = [([4], [3, 4], [3, 4, 5]), ([0], [0, 1], [0, 1, 2])]
    for aggregator in _all_instances():
        if not aggregator.is_size_proportional:
            continue
        for chain in chains:
            values = [aggregator.value(two_triangles, list(s)) for s in chain]
            assert values == sorted(values), aggregator.name


def test_node_dominated_flag_is_truthful(two_triangles):
    """Definition 6: f(H) equals some member's own weight."""
    for aggregator in _all_instances():
        if not aggregator.is_node_dominated:
            continue
        subset = [3, 4, 5]
        value = aggregator.value(two_triangles, subset)
        singles = {aggregator.value(two_triangles, [v]) for v in subset}
        assert value in singles, aggregator.name


def test_repr_and_equality():
    sum_agg = get_aggregator("sum")
    assert "Sum" in repr(sum_agg)
    assert sum_agg == get_aggregator("sum")
    assert sum_agg != get_aggregator("avg")
    assert sum_agg != "sum"  # not equal to plain strings
