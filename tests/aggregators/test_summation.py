"""Unit tests for sum and sum-surplus."""

import pytest

from repro.aggregators.summation import Sum, SumSurplus
from repro.errors import AggregatorError
from repro.utils.stats import SubsetStats


def test_sum_value(triangle):
    assert Sum().value(triangle, [0, 1, 2]) == 6.0
    assert Sum().value(triangle, [2]) == 3.0


def test_sum_flags_match_table1():
    agg = Sum()
    assert agg.is_size_proportional
    assert agg.decreases_under_removal
    assert not agg.np_hard_unconstrained
    assert agg.np_hard_constrained  # Theorem 4


def test_sum_surplus_formula(triangle):
    agg = SumSurplus(alpha=2.0)
    # w(H) + alpha * |H| = 6 + 2*3
    assert agg.value(triangle, [0, 1, 2]) == 12.0


def test_sum_surplus_default_alpha():
    agg = SumSurplus()
    assert agg.alpha == 1.0
    assert agg.name == "sum-surplus(alpha=1)"


def test_sum_surplus_negative_alpha_rejected():
    with pytest.raises(AggregatorError):
        SumSurplus(alpha=-0.5)


def test_sum_surplus_zero_alpha_equals_sum(triangle):
    assert SumSurplus(alpha=0.0).value(triangle, [0, 2]) == Sum().value(
        triangle, [0, 2]
    )


def test_empty_rejected():
    with pytest.raises(AggregatorError):
        Sum().from_stats(SubsetStats.empty())


def test_equality_by_name():
    assert Sum() == Sum()
    assert SumSurplus(1.0) == SumSurplus(1.0)
    assert SumSurplus(1.0) != SumSurplus(2.0)
    assert Sum() != SumSurplus(0.0)  # different names even if same values
