"""Unit tests for aggregator name resolution."""

import pytest

from repro.aggregators.average import Average
from repro.aggregators.base import Aggregator
from repro.aggregators.registry import (
    available_aggregators,
    get_aggregator,
    register_aggregator,
)
from repro.aggregators.summation import Sum, SumSurplus
from repro.errors import AggregatorError
from repro.utils.stats import SubsetStats


def test_basic_names():
    assert isinstance(get_aggregator("sum"), Sum)
    assert isinstance(get_aggregator("avg"), Average)
    assert get_aggregator("min").name == "min"
    assert get_aggregator("MAX").name == "max"
    assert get_aggregator("average").name == "avg"


def test_parameterised_names():
    agg = get_aggregator("sum-surplus(alpha=2.5)")
    assert isinstance(agg, SumSurplus)
    assert agg.alpha == 2.5
    agg = get_aggregator("weight-density(0.5)")
    assert agg.name == "weight-density(beta=0.5)"


def test_instance_passthrough():
    instance = Sum()
    assert get_aggregator(instance) is instance


def test_unknown_and_malformed_rejected():
    with pytest.raises(AggregatorError):
        get_aggregator("median")
    with pytest.raises(AggregatorError):
        get_aggregator("sum(")
    with pytest.raises(AggregatorError):
        get_aggregator(42)  # type: ignore[arg-type]


def test_available_listing():
    names = available_aggregators()
    for required in ("sum", "avg", "min", "max", "sum-surplus",
                     "weight-density", "balanced-density"):
        assert required in names


def test_register_custom():
    class Median(Aggregator):
        name = "test-median"

        def from_stats(self, stats: SubsetStats, graph_total=None) -> float:
            return (stats.weight_min + stats.weight_max) / 2

    register_aggregator("test-median", lambda arg: Median())
    assert get_aggregator("test-median").name == "test-median"
    with pytest.raises(AggregatorError):
        register_aggregator("test-median", lambda arg: Median())
