"""Unit tests for weight density and balanced density."""

import math

import pytest

from repro.aggregators.density import BalancedDensity, WeightDensity
from repro.errors import AggregatorError
from repro.utils.stats import SubsetStats


def test_weight_density_formula(triangle):
    agg = WeightDensity(beta=0.5)
    # w(H) - beta * |H| = 6 - 0.5 * 3
    assert agg.value(triangle, [0, 1, 2]) == 4.5


def test_weight_density_requires_positive_beta():
    with pytest.raises(AggregatorError):
        WeightDensity(beta=0.0)
    with pytest.raises(AggregatorError):
        WeightDensity(beta=-1.0)


def test_weight_density_flags():
    agg = WeightDensity(beta=1.0)
    assert agg.np_hard_unconstrained
    assert not agg.is_size_proportional
    assert not agg.decreases_under_removal


def test_balanced_density_formula(two_triangles):
    agg = BalancedDensity()
    # w(H)=60 for {3,4,5}, total=66: 60 / (2*60 - 66) = 60/54
    assert agg.value(two_triangles, [3, 4, 5]) == pytest.approx(60.0 / 54.0)


def test_balanced_density_pole():
    agg = BalancedDensity()
    stats = SubsetStats(2, 5.0, 2.0, 3.0)
    assert math.isinf(agg.from_stats(stats, graph_total=10.0))


def test_balanced_density_requires_total():
    agg = BalancedDensity()
    with pytest.raises(AggregatorError):
        agg.from_stats(SubsetStats(1, 1.0, 1.0, 1.0))


def test_balanced_density_flag_needs_graph_total():
    assert BalancedDensity().needs_graph_total
    assert not WeightDensity(1.0).needs_graph_total


def test_parameter_embedded_in_name():
    assert WeightDensity(beta=0.25).name == "weight-density(beta=0.25)"
