"""Figure 14 — the Aminer case study, timed end to end.

Asserts the qualitative claims: three aggregators produce non-overlapping
top-3 groups; avg's groups are no larger than sum's (elite vs diverse).
"""

from __future__ import annotations


from benchmarks.conftest import once
from repro.bench.case_study import render_case_study, run_case_study


def test_bench_case_study(benchmark):
    benchmark.group = "fig14"
    panels = once(benchmark, run_case_study)
    assert {p.aggregator for p in panels} == {"min", "avg", "sum"}
    for panel in panels:
        assert len(panel.communities) == 3
        assert panel.communities.is_pairwise_disjoint()


def test_shape_aggregators_disagree():
    panels = {p.aggregator: p for p in run_case_study()}
    # avg tends to pick smaller (elite) groups than sum's diverse ones.
    avg_sizes = sum(c.size for c in panels["avg"].communities)
    sum_sizes = sum(c.size for c in panels["sum"].communities)
    assert avg_sizes <= sum_sizes
    # The three result families are not identical.
    families = {
        agg: frozenset(c.vertices for c in panel.communities)
        for agg, panel in panels.items()
    }
    assert len(set(families.values())) >= 2


def test_render_readable():
    text = render_case_study(run_case_study())
    assert "[min]" in text and "[avg]" in text and "[sum]" in text
    assert "top-1" in text
