"""Figure 14 — the Aminer case study, timed end to end.

Asserts the qualitative claims: three aggregators produce non-overlapping
top-3 groups; avg's groups are no larger than sum's (elite vs diverse).
The ingestion leg runs the identical protocol on a SNAP-format edge list
(the checked-in fixture, or any published download via
``REPRO_CASE_EDGELIST``) through :func:`repro.graphs.io.ingest_edge_list`
— the same path ``repro ingest`` takes.
"""

from __future__ import annotations

import os
import pathlib

from benchmarks.conftest import once
from repro.bench.case_study import render_case_study, run_case_study
from repro.graphs.io import ingest_edge_list

#: A small scrambled-id SNAP-style collaboration network with the format
#: warts real downloads carry (comments, duplicate/mirrored edges, a
#: self-loop); regenerate with tools/make_snap_fixture.py.
SNAP_FIXTURE = pathlib.Path(__file__).parent / "data" / "snap_collab_fixture.txt"


def test_bench_case_study(benchmark):
    benchmark.group = "fig14"
    panels = once(benchmark, run_case_study)
    assert {p.aggregator for p in panels} == {"min", "avg", "sum"}
    for panel in panels:
        assert len(panel.communities) == 3
        assert panel.communities.is_pairwise_disjoint()


def test_shape_aggregators_disagree():
    panels = {p.aggregator: p for p in run_case_study()}
    # avg tends to pick smaller (elite) groups than sum's diverse ones.
    avg_sizes = sum(c.size for c in panels["avg"].communities)
    sum_sizes = sum(c.size for c in panels["sum"].communities)
    assert avg_sizes <= sum_sizes
    # The three result families are not identical.
    families = {
        agg: frozenset(c.vertices for c in panel.communities)
        for agg, panel in panels.items()
    }
    assert len(set(families.values())) >= 2


def test_render_readable():
    text = render_case_study(run_case_study())
    assert "[min]" in text and "[avg]" in text and "[sum]" in text
    assert "top-1" in text


def test_bench_case_study_on_ingested_snap_graph(benchmark):
    """The Figure 14 protocol end-to-end on a SNAP edge list.

    ``REPRO_CASE_EDGELIST`` points the run at a real published download;
    the checked-in fixture keeps the leg exercised per-PR without network
    access.
    """
    benchmark.group = "fig14"
    path = os.environ.get("REPRO_CASE_EDGELIST", str(SNAP_FIXTURE))

    def _ingest_and_run():
        graph, __ = ingest_edge_list(path, labels="degree")
        return graph, run_case_study(graph=graph)

    graph, panels = once(benchmark, _ingest_and_run)
    assert graph.labels is not None  # constrained-ready out of the box
    assert {p.aggregator for p in panels} == {"min", "avg", "sum"}
    assert {p.weight_kind for p in panels} == {"core", "pagerank", "degree"}
    for panel in panels:
        assert len(panel.communities) >= 1
        assert panel.communities.is_pairwise_disjoint()
        for community in panel.communities:
            assert community.size <= 8  # CASE_S cap holds on ingested runs
