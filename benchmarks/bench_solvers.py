"""Solver-level old-vs-new: end-to-end Algorithm 1/2 under both engines.

PR 1 benchmarked the substrate kernels; this file measures what the user
actually waits for — a whole ``sum_naive`` / ``tic_improved`` query — with
the expansion machinery on the set engine ("old": dict adjacency, Python
Tarjan, frozenset copies) versus the CSR engine of
:mod:`repro.influential.expansion_csr` ("new": component-local CSR, array
cascades, int32 member arrays).

``python benchmarks/bench_solvers.py`` runs the standalone comparison at
the paper's default parameters (r=5, eps=0.1, k=10) and writes
``BENCH_solver_expansion.json``: ``tic_improved`` (both the eps=0.1 Approx
and eps=0 Improve configurations) on a G(50k, 400k) random graph, and
``sum_naive`` on a smaller companion graph — Algorithm 1 expands *every*
vertex of every retained community, so the set engine needs hours at 50k;
the scaled-down instance keeps the old/new comparison honest and
affordable.  ``--ci`` shrinks everything for the gating CI regression
diff.  The pytest-benchmark entries below cover the email stand-in.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.influential.improved import tic_improved
from repro.influential.naive_sum import sum_naive

DEFAULT_K = 10
DEFAULT_R = 5
DEFAULT_EPS = 0.1


# ----------------------------------------------------------------------
# pytest-benchmark entries (representative dataset, both engines)
# ----------------------------------------------------------------------
def test_bench_tic_improved_set_backend(benchmark, email):
    benchmark.group = "solver-backends"
    result = benchmark(tic_improved, email, 4, DEFAULT_R, None, 0.1, "set")
    assert len(result)


def test_bench_tic_improved_csr_backend(benchmark, email):
    benchmark.group = "solver-backends"
    email.csr
    result = benchmark(tic_improved, email, 4, DEFAULT_R, None, 0.1, "csr")
    assert len(result)


def test_bench_sum_naive_set_backend(benchmark, email):
    benchmark.group = "solver-backends"
    result = benchmark(sum_naive, email, 4, DEFAULT_R, None, None, "set")
    assert len(result)


def test_bench_sum_naive_csr_backend(benchmark, email):
    benchmark.group = "solver-backends"
    email.csr
    result = benchmark(sum_naive, email, 4, DEFAULT_R, None, None, "csr")
    assert len(result)


def test_solver_backends_agree_on_email(email):
    assert tic_improved(email, 4, DEFAULT_R, eps=0.1, backend="set") == (
        tic_improved(email, 4, DEFAULT_R, eps=0.1, backend="csr")
    )
    assert sum_naive(email, 4, DEFAULT_R, backend="set") == (
        sum_naive(email, 4, DEFAULT_R, backend="csr")
    )


# ----------------------------------------------------------------------
# Standalone old-vs-new comparison (the expansion engine's receipts)
# ----------------------------------------------------------------------
def _weighted_gnm(n: int, m: int, seed: int):
    from repro.graphs.generators.random_graphs import gnm_random_graph
    from repro.utils.rng import make_rng

    graph = gnm_random_graph(n, m, seed=seed)
    rng = make_rng(seed + 1)
    graph = graph.with_weights(rng.uniform(0.0, 100.0, graph.n))
    graph.csr  # warm: the flattening is once-per-topology, not per-query
    return graph


def _timed(fn, repeats: int):
    times = []
    result = None
    for __ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return min(times), result


def measure_solver_speedups(
    n: int = 50_000,
    m: int = 400_000,
    naive_n: int = 2_000,
    naive_m: int = 16_000,
    k: int = DEFAULT_K,
    r: int = DEFAULT_R,
    eps: float = DEFAULT_EPS,
    seed: int = 7,
    repeats: int = 1,
) -> dict:
    """End-to-end solver timings under both engines, as a JSON-ready dict.

    Each entry reports set seconds, csr seconds, the speedup, and whether
    the two engines returned identical result sets (they must).
    """
    large = _weighted_gnm(n, m, seed)
    small = _weighted_gnm(naive_n, naive_m, seed)
    report = {
        "benchmark": "solver_expansion_speedups",
        "parameters": {"k": k, "r": r, "eps": eps, "seed": seed},
        "graphs": {
            "tic_improved": {"model": "gnm", "n": large.n, "m": large.m},
            "sum_naive": {"model": "gnm", "n": small.n, "m": small.m},
        },
        "solvers": {},
    }
    cases = {
        "tic_improved_approx": lambda b: tic_improved(
            large, k, r, eps=eps, backend=b
        ),
        "tic_improved_exact": lambda b: tic_improved(
            large, k, r, eps=0.0, backend=b
        ),
        "sum_naive": lambda b: sum_naive(small, k, r, backend=b),
    }
    for name, solver in cases.items():
        csr_seconds, csr_result = _timed(lambda: solver("csr"), repeats)
        set_seconds, set_result = _timed(lambda: solver("set"), repeats)
        report["solvers"][name] = {
            "set_seconds": round(set_seconds, 4),
            "csr_seconds": round(csr_seconds, 4),
            "speedup": round(set_seconds / csr_seconds, 2),
            "results_agree": set_result == csr_result,
            "communities": len(csr_result),
        }
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=50_000)
    parser.add_argument("--m", type=int, default=400_000)
    parser.add_argument("--naive-n", type=int, default=2_000)
    parser.add_argument("--naive-m", type=int, default=16_000)
    parser.add_argument("--k", type=int, default=DEFAULT_K)
    parser.add_argument("--r", type=int, default=DEFAULT_R)
    parser.add_argument("--eps", type=float, default=DEFAULT_EPS)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument(
        "--ci", action="store_true",
        help="shrunk graphs for the gating CI regression check",
    )
    parser.add_argument(
        "--output", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_solver_expansion.json",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="after measuring, diff speedups against this committed report "
        "(gating; a regression past tolerance fails the run)",
    )
    args = parser.parse_args()
    if args.ci:
        args.n, args.m = 8_000, 64_000
        args.naive_n, args.naive_m = 1_000, 8_000
    report = measure_solver_speedups(
        n=args.n, m=args.m, naive_n=args.naive_n, naive_m=args.naive_m,
        k=args.k, r=args.r, eps=args.eps, repeats=args.repeats,
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {args.output}")
    if args.baseline is not None and args.baseline.exists():
        raise SystemExit(compare_to_baseline(args.output, args.baseline))


def compare_to_baseline(
    fresh: pathlib.Path, baseline: pathlib.Path, tolerance: float = 0.7
) -> int:
    """Gating diff: nonzero when fresh speedups regress past ``tolerance``
    times the committed baseline (or the engines disagree).  CI calls this
    after a --ci run; graphs differ from the committed full-size run, so
    only ratios are compared (and only per solver whose baseline graph
    shape matches the fresh run's).  Console lines, the step-summary table
    and the waiver file come from :mod:`baseline_diff`.
    """
    from baseline_diff import report_ratio_metrics

    fresh_report = json.loads(fresh.read_text())
    baseline_report = json.loads(baseline.read_text())
    metrics, notes, failures = [], [], []
    for name, entry in fresh_report.get("solvers", {}).items():
        reference = baseline_report.get("solvers", {}).get(name)
        if reference is None:
            continue
        if not entry.get("results_agree", False):
            failures.append(f"{name}: set/csr results disagree in fresh run")
        solver_key = name if name in fresh_report.get("graphs", {}) else (
            "tic_improved" if name.startswith("tic_improved") else name
        )
        fresh_graph = fresh_report.get("graphs", {}).get(solver_key)
        base_graph = baseline_report.get("graphs", {}).get(solver_key)
        if fresh_graph != base_graph:
            notes.append(
                f"{name}: graph sizes differ from baseline "
                f"({fresh_graph} vs {base_graph}) — speedup ratios are not "
                f"comparable, skipped"
            )
            continue
        metrics.append(
            (f"{name} set/csr speedup", entry["speedup"], reference["speedup"])
        )
    return report_ratio_metrics(
        "bench_solvers", metrics, tolerance=tolerance, notes=notes,
        failures=failures,
    )


if __name__ == "__main__":
    main()
