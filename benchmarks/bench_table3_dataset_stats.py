"""Table III — dataset construction and statistics.

Benchmarks the stand-in generators and records the measured statistics as
``extra_info`` so the bench JSON carries the paper-vs-ours comparison.
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import dataset_statistics_table
from repro.core.decomposition import kmax
from repro.graphs.generators.snap_like import SNAP_LIKE_SPECS, snap_like_topology

SMALL_SET = ("domainpub", "email", "dblp")


@pytest.mark.parametrize("name", SMALL_SET)
def test_bench_topology_generation(benchmark, name):
    benchmark.group = "table3-generate"
    spec = SNAP_LIKE_SPECS[name]
    graph = benchmark(snap_like_topology, spec)
    benchmark.extra_info["n"] = graph.n
    benchmark.extra_info["m"] = graph.m
    benchmark.extra_info["paper_n"] = spec.paper_n
    benchmark.extra_info["paper_m"] = spec.paper_m
    assert graph.n == spec.n


@pytest.mark.parametrize("name", SMALL_SET)
def test_bench_kmax(benchmark, name):
    benchmark.group = "table3-kmax"
    spec = SNAP_LIKE_SPECS[name]
    graph = snap_like_topology(spec)
    value = benchmark(kmax, graph)
    benchmark.extra_info["kmax"] = value
    benchmark.extra_info["paper_kmax"] = spec.paper_kmax
    assert value >= max(spec.k_sweep)


def test_table3_report_prints(capsys):
    print(dataset_statistics_table())
    out = capsys.readouterr().out
    assert "friendster" in out
    assert "65,608,366" in out  # the paper's number appears alongside ours
