"""Figure 5 (Exp-III) — Approx running time vs r for several eps.

Expected shape: flat in eps, mildly increasing in r.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import once
from repro.influential.improved import tic_improved

R_VALUES = (5, 10, 15, 20)
EPS_VALUES = (0.01, 0.1, 0.5)
K = 4


@pytest.mark.parametrize("r", R_VALUES)
@pytest.mark.parametrize("eps", EPS_VALUES)
def test_bench_approx_eps_r(benchmark, dblp, r, eps):
    benchmark.group = f"fig5-dblp-r{r}"
    result = once(benchmark, tic_improved, dblp, K, r, None, eps)
    assert len(result) <= r


def test_approx_quality_improves_with_smaller_eps(dblp):
    """Tighter eps can only give equal-or-better r-th values."""
    exact = tic_improved(dblp, K, 10, eps=0.0)
    loose = tic_improved(dblp, K, 10, eps=0.5)
    tight = tic_improved(dblp, K, 10, eps=0.01)
    assert tight.rth_value(10) >= loose.rth_value(10) - 1e-12
    assert tight.rth_value(10) >= (1 - 0.01) * exact.rth_value(10) - 1e-12
