"""Figure 11 (Exp-VI) — local search time vs s, avg, size-constrained."""

from __future__ import annotations

import pytest

from benchmarks.conftest import once
from repro.influential.local_search import local_search

K, R = 4, 5


@pytest.mark.parametrize("s", (5, 10, 15, 20))
@pytest.mark.parametrize("greedy", (False, True), ids=("random", "greedy"))
def test_bench_youtube(benchmark, youtube, s, greedy):
    benchmark.group = f"fig11-youtube-s{s}"
    result = once(benchmark, local_search, youtube, K, R, s, "avg", greedy)
    assert all(c.size <= s for c in result)
