"""Figure 3 (Exp-II) — running time vs r: Naive / Improve / Approx.

Representative dataset: dblp at the paper's default k = 4.  Expected
shape: every algorithm's time grows (mildly) with r.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import once
from repro.influential.improved import tic_improved
from repro.influential.naive_sum import sum_naive

R_VALUES = (5, 10, 15, 20)
K = 4


@pytest.mark.parametrize("r", R_VALUES)
def test_bench_naive(benchmark, dblp, r):
    benchmark.group = f"fig3-dblp-r{r}"
    result = once(benchmark, sum_naive, dblp, K, r)
    assert len(result) <= r


@pytest.mark.parametrize("r", R_VALUES)
def test_bench_improve(benchmark, dblp, r):
    benchmark.group = f"fig3-dblp-r{r}"
    result = once(benchmark, tic_improved, dblp, K, r)
    assert len(result) <= r


@pytest.mark.parametrize("r", R_VALUES)
def test_bench_approx(benchmark, dblp, r):
    benchmark.group = f"fig3-dblp-r{r}"
    result = once(benchmark, tic_improved, dblp, K, r, None, 0.1)
    assert len(result) <= r


def test_shape_time_grows_with_r(dblp):
    from repro.bench.runner import time_call

    t_small, __ = time_call(lambda: tic_improved(dblp, K, 1))
    t_large, __ = time_call(lambda: tic_improved(dblp, K, 20))
    # More communities to confirm means more expansions: r=20 cannot be
    # meaningfully cheaper than r=1 (allow generous noise margin).
    assert t_large >= 0.5 * t_small
