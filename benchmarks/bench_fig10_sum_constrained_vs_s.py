"""Figure 10 (Exp-VI) — local search time vs s, sum, size-constrained.

Expected shape: time grows with s (larger per-seed neighbourhoods).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import once
from repro.influential.local_search import local_search

K, R = 4, 5


@pytest.mark.parametrize("s", (5, 10, 15, 20))
@pytest.mark.parametrize("greedy", (False, True), ids=("random", "greedy"))
def test_bench_youtube(benchmark, youtube, s, greedy):
    benchmark.group = f"fig10-youtube-s{s}"
    result = once(benchmark, local_search, youtube, K, R, s, "sum", greedy)
    assert all(c.size <= s for c in result)


def test_shape_time_grows_with_s(youtube):
    from repro.bench.runner import time_call

    t_small, __ = time_call(lambda: local_search(youtube, K, R, 5, "sum"))
    t_large, __ = time_call(lambda: local_search(youtube, K, R, 20, "sum"))
    assert t_large >= t_small * 0.8  # monotone up to noise
