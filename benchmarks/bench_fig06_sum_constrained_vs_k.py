"""Figure 6 (Exp-IV) — local search time vs k, sum, size-constrained.

Representatives: email (small) and orkut (large).  Expected shape: time
falls as k grows (smaller k-core leaves fewer seeds).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import once
from repro.influential.local_search import local_search

R, S = 5, 20


@pytest.mark.parametrize("k", (4, 6, 8, 10))
@pytest.mark.parametrize("greedy", (False, True), ids=("random", "greedy"))
def test_bench_email(benchmark, email, k, greedy):
    benchmark.group = f"fig6-email-k{k}"
    result = once(benchmark, local_search, email, k, R, S, "sum", greedy)
    benchmark.extra_info["rth"] = result.rth_value(R)


# k = 20 would violate s >= k + 1 at the paper default s = 20 (a k-core
# needs k + 1 vertices), so the large-dataset sweep stops at 16 here.
@pytest.mark.parametrize("k", (8, 12, 16))
@pytest.mark.parametrize("greedy", (False, True), ids=("random", "greedy"))
def test_bench_orkut(benchmark, orkut, k, greedy):
    benchmark.group = f"fig6-orkut-k{k}"
    result = once(benchmark, local_search, orkut, k, R, S, "sum", greedy)
    benchmark.extra_info["rth"] = result.rth_value(R)


def test_shape_time_falls_with_k(email):
    from repro.bench.runner import time_call

    t_low, __ = time_call(lambda: local_search(email, 4, R, S, "sum"))
    t_high, __ = time_call(lambda: local_search(email, 10, R, S, "sum"))
    assert t_high <= t_low * 1.5  # smaller core => no slower (noise margin)
