"""Precomputed index lookups vs cold solves: the cost of a served query.

PR 6 adds :class:`repro.index.InfluentialIndex`: every (k, aggregator)
community family down to a fixed depth is captured once from the shared
:class:`~repro.serving.engine_pool.ExpansionEnginePool`, so an indexed
``(k, r, f)`` query is answered by slicing a precomputed array — no
cascade peel, no lattice expansion, no solver at all.  This benchmark
measures that lookup on the PR 1/2 reference graph G(50k, 400k):

* per-query **p50/p99 latency** through ``QueryService.submit`` with the
  result cache disabled (the index, not the LRU, must carry the load) —
  the acceptance gate is **p50 < 1 ms** for indexed sum-family queries;
* the same queries **cold** through ``top_r_communities`` (best-of over
  a sample), giving the headline ``speedup``;
* **byte-identity**: every indexed answer is compared against a cold
  solve of the same query — vertex sets, values and order must match
  exactly (``results_agree``);
* **snapshot round-trip**: the index is persisted with ``save_snapshot``
  and restored with ``load_service``; the restored service must answer
  identically with zero captures (``roundtrip_agree``, build counter
  stays 0);
* an **edge-update batch** through ``update_edges``: only levels at
  ``k <= max_affected_core`` may be re-captured, everything above must
  survive verbatim (``update_locality_holds``, from the index's
  retained/invalidated counters).

``python benchmarks/bench_index.py`` writes ``BENCH_index.json``;
``--ci`` shrinks the graph for the gating CI smoke diff against the
committed ``BENCH_index_ci_baseline.json``.  The pytest-benchmark
entries below cover the email stand-in.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro.influential.api import top_r_communities
from repro.serving.query import InfluentialQuery
from repro.serving.service import QueryService
from repro.serving.store import load_service, save_snapshot

DEFAULT_DEPTH = 16
COLD_SAMPLE = 6


# ----------------------------------------------------------------------
# pytest-benchmark entries (representative dataset)
# ----------------------------------------------------------------------
def test_bench_indexed_query_email(benchmark, email):
    benchmark.group = "index-lookups"
    service = QueryService(email, cache_size=0)
    service.enable_index(depth=8)
    query = InfluentialQuery(k=4, r=5, f="sum")

    benchmark(service.submit, query)
    assert service.solver_calls == 0


def test_bench_cold_query_email(benchmark, email):
    benchmark.group = "index-lookups"
    service = QueryService(email, cache_size=0)
    query = InfluentialQuery(k=4, r=5, f="sum")

    benchmark(service.submit, query)
    assert service.solver_calls > 0


def test_indexed_equals_cold_on_email(email):
    service = QueryService(email, cache_size=0)
    service.enable_index(depth=8)
    query = InfluentialQuery(k=4, r=5, f="sum")
    served = service.submit(query)
    cold = top_r_communities(email, k=4, r=5, f="sum")
    assert served == cold and served.values() == cold.values()


# ----------------------------------------------------------------------
# Standalone measurement
# ----------------------------------------------------------------------
def _weighted_gnm(n, m, seed):
    from repro.graphs.generators.random_graphs import gnm_random_graph
    from repro.utils.rng import make_rng

    graph = gnm_random_graph(n, m, seed=seed)
    graph = graph.with_weights(make_rng(seed + 1).uniform(0.0, 100.0, graph.n))
    graph.csr  # noqa: B018 — warm: flattening is per-topology, not per-query
    return graph


def _query_mix(kmax, depth, seed):
    """Indexed (k, r, sum) queries sweeping k levels and r depths."""
    rng = np.random.default_rng(seed)
    queries = []
    for k in range(1, kmax + 1):
        for r in (1, max(1, depth // 2), depth):
            queries.append(InfluentialQuery(k=k, r=r, f="sum"))
    rng.shuffle(queries)
    return queries


def _pick_edges(graph, count, seed):
    """``count`` absent edges between random existing vertices."""
    rng = np.random.default_rng(seed)
    picked = []
    while len(picked) < count:
        u, v = (int(x) for x in rng.integers(0, graph.n, 2))
        if u == v or v in graph.adjacency[u]:
            continue
        edge = (u, v) if u < v else (v, u)
        if edge not in picked:
            picked.append(edge)
    return picked


def _percentile(samples, q):
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


def measure_index(
    n: int = 50_000,
    m: int = 400_000,
    depth: int = DEFAULT_DEPTH,
    seed: int = 7,
    snapshot_dir: "pathlib.Path | None" = None,
) -> dict:
    """Index build + lookup latency vs cold solves, JSON-ready."""
    graph = _weighted_gnm(n, m, seed)
    service = QueryService(graph, cache_size=0)

    start = time.perf_counter()
    index = service.enable_index(depth=depth)
    build_seconds = time.perf_counter() - start
    levels = len(index)

    queries = _query_mix(service.kmax, depth, seed + 2)
    lookup_times = []
    answers = []
    for query in queries:
        start = time.perf_counter()
        answers.append(service.submit(query))
        lookup_times.append(time.perf_counter() - start)
    hits = index.hits

    # Byte-identity against cold solves, on a deterministic sample (the
    # full sweep at 50k would dominate the runtime without adding signal).
    sample = list(range(0, len(queries), max(1, len(queries) // COLD_SAMPLE)))
    results_agree = True
    cold_times = []
    for i in sample:
        start = time.perf_counter()
        cold = top_r_communities(graph, **queries[i].solver_kwargs())
        cold_times.append(time.perf_counter() - start)
        if answers[i] != cold or answers[i].values() != cold.values():
            results_agree = False

    # Snapshot round-trip: restored index answers identically, captures
    # nothing (builds stays 0 — arrays come straight off the manifest).
    roundtrip_agree = True
    if snapshot_dir is not None:
        save_snapshot(service, snapshot_dir)
        restored = load_service(snapshot_dir, cache_size=0)
        for i in sample:
            again = restored.submit(queries[i])
            if again != answers[i] or again.values() != answers[i].values():
                roundtrip_agree = False
        if (
            restored.index is None
            or restored.index.stats()["builds"] != 0
            or restored.solver_calls != 0
        ):
            roundtrip_agree = False

    # Edge-update batch: the locality bound scopes re-capture.  Levels
    # above max_affected_core must survive verbatim (retained counter),
    # and the follow-up queries must again match cold solves.
    flips = _pick_edges(graph, 4, seed + 3)
    report = service.update_edges(insert=flips)
    bound = report.delta.max_affected_core
    stats = index.stats()
    expected_invalid = sum(
        1 for k in range(1, service.kmax + 1) if k <= bound
    ) * len(index.aggregators)
    update_locality_holds = (
        stats["levels_invalidated"] <= expected_invalid
        and stats["levels_retained"]
        >= (levels - expected_invalid)
    )
    probe = InfluentialQuery(k=min(service.kmax, 4), r=depth, f="sum")
    served = service.submit(probe)
    cold = top_r_communities(service.graph, **probe.solver_kwargs())
    update_agree = served == cold and served.values() == cold.values()

    p50_ms = _percentile(lookup_times, 50) * 1e3
    p99_ms = _percentile(lookup_times, 99) * 1e3
    cold_p50_ms = _percentile(cold_times, 50) * 1e3
    return {
        "benchmark": "influential_index",
        "graph": {"model": "gnm", "n": graph.n, "m": graph.m},
        "parameters": {"depth": depth, "seed": seed, "levels": levels},
        "build_seconds": round(build_seconds, 3),
        "lookup": {
            "queries": len(queries),
            "index_hits": hits,
            "p50_ms": round(p50_ms, 4),
            "p99_ms": round(p99_ms, 4),
            "p50_under_1ms": p50_ms < 1.0,
        },
        "cold": {
            "sampled": len(cold_times),
            "p50_ms": round(cold_p50_ms, 4),
        },
        "speedup": round(cold_p50_ms / p50_ms, 2) if p50_ms else float("inf"),
        "results_agree": results_agree,
        "roundtrip_agree": roundtrip_agree,
        "update_locality_holds": update_locality_holds,
        "update_results_agree": update_agree,
        "index_stats": index.stats(),
    }


def compare_to_baseline(
    fresh: pathlib.Path, baseline: pathlib.Path, tolerance: float = 0.7
) -> int:
    """Gating diff of index lookup speedup against the committed CI
    baseline (ratios only, shapes must match; any correctness flag going
    false fails too); console + step-summary output comes from
    :mod:`baseline_diff`."""
    from baseline_diff import report_ratio_metrics

    fresh_report = json.loads(fresh.read_text())
    base_report = json.loads(baseline.read_text())
    failures = []
    for flag, message in (
        ("results_agree", "indexed answers disagree with cold solves"),
        ("roundtrip_agree", "snapshot round-trip changed indexed answers"),
        ("update_locality_holds", "edge update re-captured unaffected levels"),
        ("update_results_agree", "post-update answers disagree with cold"),
    ):
        if not fresh_report.get(flag, True):
            failures.append(message)
    if fresh_report.get("graph") != base_report.get("graph"):
        return report_ratio_metrics(
            "bench_index",
            [],
            tolerance=tolerance,
            notes=[
                "graph shapes differ from baseline — speedups are not "
                "comparable, skipped"
            ],
            failures=failures,
        )
    return report_ratio_metrics(
        "bench_index",
        [
            (
                "indexed lookup vs cold solve (p50)",
                fresh_report["speedup"],
                base_report["speedup"],
            ),
        ],
        tolerance=tolerance,
        failures=failures,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=50_000)
    parser.add_argument("--m", type=int, default=400_000)
    parser.add_argument("--depth", type=int, default=DEFAULT_DEPTH)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--ci", action="store_true",
        help="shrunk graph for the gating CI smoke diff",
    )
    parser.add_argument(
        "--output", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_index.json",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="after measuring, diff speedups against this committed report "
        "(gating; a regression past tolerance fails the run)",
    )
    args = parser.parse_args()
    if args.ci:
        args.n, args.m = 8_000, 64_000
    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        report = measure_index(
            n=args.n,
            m=args.m,
            depth=args.depth,
            seed=args.seed,
            snapshot_dir=pathlib.Path(scratch) / "snap",
        )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {args.output}")
    if args.baseline is not None and args.baseline.exists():
        raise SystemExit(compare_to_baseline(args.output, args.baseline))


if __name__ == "__main__":
    main()
