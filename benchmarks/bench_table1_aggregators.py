"""Table I — aggregation functions: property flags and evaluation cost.

Verifies the hardness/property matrix the paper tabulates, and measures
the per-evaluation cost of each aggregator on a large subset (they must
all be O(1) on precomputed stats; ``value`` is O(|H|)).
"""

from __future__ import annotations

import pytest

from repro.aggregators.registry import get_aggregator
from repro.utils.stats import SubsetStats

#: (name, node-dominated, size-proportional, NP-hard unconstrained)
TABLE1 = [
    ("min", True, False, False),
    ("max", True, True, False),
    ("sum", False, True, False),
    ("sum-surplus(alpha=1)", False, True, False),
    ("avg", False, False, True),
    ("weight-density(beta=1)", False, False, True),
    ("balanced-density", False, False, True),
]


@pytest.mark.parametrize("name,dominated,proportional,np_hard", TABLE1)
def test_table1_flags(name, dominated, proportional, np_hard):
    aggregator = get_aggregator(name)
    assert aggregator.is_node_dominated == dominated
    assert aggregator.is_size_proportional == proportional
    assert aggregator.np_hard_unconstrained == np_hard
    assert aggregator.np_hard_constrained  # every constrained case is NP-hard


@pytest.mark.parametrize("name", [row[0] for row in TABLE1])
def test_bench_from_stats_evaluation(benchmark, name):
    aggregator = get_aggregator(name)
    stats = SubsetStats(size=1000, weight_sum=12345.0, weight_min=0.5, weight_max=99.0)
    benchmark.group = "table1-from-stats"
    value = benchmark(aggregator.from_stats, stats, 20000.0)
    assert value == value  # not NaN


def test_bench_value_walks_subset(benchmark, email):
    aggregator = get_aggregator("sum")
    subset = list(range(0, email.n, 2))
    benchmark.group = "table1-value"
    total = benchmark(aggregator.value, email, subset)
    assert total > 0
