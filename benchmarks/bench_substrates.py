"""Substrate ablation — not a paper figure, but engineering due diligence:
where does solver time go?  Core decomposition, PageRank, component
splitting and the expansion fast path are each measured in isolation.

The ``*_set`` / ``*_csr`` benchmark pairs compare the two graph-kernel
backends on the same dataset; ``python benchmarks/bench_substrates.py``
runs the standalone old-vs-new comparison on a 50k-vertex random graph
and writes the measured speedups to ``BENCH_csr_backend.json``.
"""

from __future__ import annotations


from repro.aggregators.summation import Sum
from repro.centrality.pagerank import pagerank
from repro.core.decomposition import core_decomposition
from repro.core.kcore import connected_kcore_components, kcore_of_subset
from repro.influential.expansion import ExpansionContext
from repro.truss.decomposition import edge_supports
from repro.utils.zobrist import ZobristHasher


def test_bench_core_decomposition(benchmark, email):
    benchmark.group = "substrate"
    cores = benchmark(core_decomposition, email)
    assert len(cores) == email.n


def test_bench_core_decomposition_set_backend(benchmark, email):
    benchmark.group = "substrate-backends"
    cores = benchmark(core_decomposition, email, "set")
    assert len(cores) == email.n


def test_bench_core_decomposition_csr_backend(benchmark, email):
    benchmark.group = "substrate-backends"
    email.csr  # warm the cache: construction is once-per-graph, not per-call
    cores = benchmark(core_decomposition, email, "csr")
    assert len(cores) == email.n


def test_bench_kcore_of_subset_set_backend(benchmark, email):
    benchmark.group = "substrate-backends"
    core = benchmark(kcore_of_subset, email, range(email.n), 4, "set")
    assert core


def test_bench_kcore_of_subset_csr_backend(benchmark, email):
    benchmark.group = "substrate-backends"
    email.csr
    core = benchmark(kcore_of_subset, email, range(email.n), 4, "csr")
    assert core


def test_bench_edge_supports_set_backend(benchmark, email):
    benchmark.group = "substrate-backends"
    supports = benchmark(edge_supports, email, "set")
    assert len(supports) == email.m


def test_bench_edge_supports_csr_backend(benchmark, email):
    benchmark.group = "substrate-backends"
    email.csr
    supports = benchmark(edge_supports, email, "csr")
    assert len(supports) == email.m


def test_backends_agree_on_email(email):
    import numpy as np

    assert np.array_equal(
        core_decomposition(email, "set"), core_decomposition(email, "csr")
    )
    assert kcore_of_subset(email, range(email.n), 4, "set") == kcore_of_subset(
        email, range(email.n), 4, "csr"
    )


def test_bench_pagerank(benchmark, email):
    benchmark.group = "substrate"
    ranks = benchmark(pagerank, email)
    assert abs(ranks.sum() - 1.0) < 1e-8


def test_bench_kcore_components(benchmark, email):
    benchmark.group = "substrate"
    comps = benchmark(connected_kcore_components, email, range(email.n), 4)
    assert comps


def test_bench_expansion_context_build(benchmark, email):
    benchmark.group = "substrate-expansion"
    component = frozenset(
        max(connected_kcore_components(email, range(email.n), 4), key=len)
    )
    value = Sum().value(email, component)
    hasher = ZobristHasher(email.n)
    ctx = benchmark(
        ExpansionContext, email, component, 4, Sum(), value, hasher
    )
    assert ctx.component == component


def test_bench_expansion_children(benchmark, email):
    benchmark.group = "substrate-expansion"
    component = frozenset(
        max(connected_kcore_components(email, range(email.n), 4), key=len)
    )
    value = Sum().value(email, component)
    ctx = ExpansionContext(email, component, 4, Sum(), value, ZobristHasher(email.n))
    vertices = sorted(component)[:50]

    def expand_fifty():
        total = 0
        for v in vertices:
            total += len(ctx.children_after_removal(v))
        return total

    produced = benchmark(expand_fifty)
    assert produced >= 0


def test_fast_path_is_common(email):
    """The articulation fast path should cover a healthy share of removals
    (that is what makes Algorithm 2 affordable at stand-in scale)."""
    component = frozenset(
        max(connected_kcore_components(email, range(email.n), 4), key=len)
    )
    ctx = ExpansionContext(
        email, component, 4, Sum(), Sum().value(email, component),
        ZobristHasher(email.n),
    )
    fast = 0
    for v in component:
        weak = [u for u in ctx.local_adj[v] if ctx.degree[u] == 4]
        if not weak and v not in ctx.articulation:
            fast += 1
    assert fast / len(component) > 0.2


# ----------------------------------------------------------------------
# Standalone old-vs-new backend comparison (the CSR refactor's receipts)
# ----------------------------------------------------------------------
def measure_backend_speedups(
    n: int = 50_000, m: int = 400_000, seed: int = 7, repeats: int = 3
) -> dict:
    """Time every rewritten kernel under both backends on one G(n, m) graph.

    Returns a JSON-ready report; kernel times are best-of-``repeats``.
    The CSR flattening cost is reported separately (it is paid once per
    graph, while the kernels run per query).
    """
    import time

    import numpy as np

    from repro.graphs.generators.random_graphs import gnm_random_graph

    def best_of(fn):
        times = []
        for __ in range(repeats):
            start = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - start)
        return min(times), result

    graph = gnm_random_graph(n, m, seed=seed)
    build_start = time.perf_counter()
    graph.csr
    csr_build_seconds = time.perf_counter() - build_start

    kernels = {
        "core_decomposition": lambda b: core_decomposition(graph, b),
        "kcore_of_subset": lambda b: kcore_of_subset(
            graph, range(graph.n), 10, b
        ),
        "edge_supports": lambda b: edge_supports(graph, b),
    }
    report = {
        "benchmark": "csr_backend_speedups",
        "graph": {"model": "gnm", "n": graph.n, "m": graph.m, "seed": seed},
        "csr_build_seconds": round(csr_build_seconds, 4),
        "kernels": {},
    }
    for name, kernel in kernels.items():
        set_seconds, set_result = best_of(lambda: kernel("set"))
        csr_seconds, csr_result = best_of(lambda: kernel("csr"))
        if isinstance(set_result, dict) or isinstance(set_result, set):
            agree = set_result == csr_result
        else:
            agree = bool(np.array_equal(set_result, csr_result))
        report["kernels"][name] = {
            "set_seconds": round(set_seconds, 4),
            "csr_seconds": round(csr_seconds, 4),
            "speedup": round(set_seconds / csr_seconds, 2),
            "results_agree": agree,
        }
    return report


def main() -> None:
    import json
    import pathlib

    report = measure_backend_speedups()
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_csr_backend.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
