"""Substrate ablation — not a paper figure, but engineering due diligence:
where does solver time go?  Core decomposition, PageRank, component
splitting and the expansion fast path are each measured in isolation.
"""

from __future__ import annotations

import pytest

from repro.aggregators.summation import Sum
from repro.centrality.pagerank import pagerank
from repro.core.decomposition import core_decomposition
from repro.core.kcore import connected_kcore_components, maximal_kcore
from repro.influential.expansion import ExpansionContext
from repro.utils.zobrist import ZobristHasher


def test_bench_core_decomposition(benchmark, email):
    benchmark.group = "substrate"
    cores = benchmark(core_decomposition, email)
    assert len(cores) == email.n


def test_bench_pagerank(benchmark, email):
    benchmark.group = "substrate"
    ranks = benchmark(pagerank, email)
    assert abs(ranks.sum() - 1.0) < 1e-8


def test_bench_kcore_components(benchmark, email):
    benchmark.group = "substrate"
    comps = benchmark(connected_kcore_components, email, range(email.n), 4)
    assert comps


def test_bench_expansion_context_build(benchmark, email):
    benchmark.group = "substrate-expansion"
    component = frozenset(
        max(connected_kcore_components(email, range(email.n), 4), key=len)
    )
    value = Sum().value(email, component)
    hasher = ZobristHasher(email.n)
    ctx = benchmark(
        ExpansionContext, email, component, 4, Sum(), value, hasher
    )
    assert ctx.component == component


def test_bench_expansion_children(benchmark, email):
    benchmark.group = "substrate-expansion"
    component = frozenset(
        max(connected_kcore_components(email, range(email.n), 4), key=len)
    )
    value = Sum().value(email, component)
    ctx = ExpansionContext(email, component, 4, Sum(), value, ZobristHasher(email.n))
    vertices = sorted(component)[:50]

    def expand_fifty():
        total = 0
        for v in vertices:
            total += len(ctx.children_after_removal(v))
        return total

    produced = benchmark(expand_fifty)
    assert produced >= 0


def test_fast_path_is_common(email):
    """The articulation fast path should cover a healthy share of removals
    (that is what makes Algorithm 2 affordable at stand-in scale)."""
    component = frozenset(
        max(connected_kcore_components(email, range(email.n), 4), key=len)
    )
    ctx = ExpansionContext(
        email, component, 4, Sum(), Sum().value(email, component),
        ZobristHasher(email.n),
    )
    fast = 0
    for v in component:
        weak = [u for u in ctx.local_adj[v] if ctx.degree[u] == 4]
        if not weak and v not in ctx.articulation:
            fast += 1
    assert fast / len(component) > 0.2
