"""Figure 9 (Exp-V) — local search time vs r, avg, size-constrained."""

from __future__ import annotations

import pytest

from benchmarks.conftest import once
from repro.influential.local_search import local_search

K, S = 4, 20


@pytest.mark.parametrize("r", (5, 10, 15, 20))
@pytest.mark.parametrize("greedy", (False, True), ids=("random", "greedy"))
def test_bench_dblp(benchmark, dblp, r, greedy):
    benchmark.group = f"fig9-dblp-r{r}"
    result = once(benchmark, local_search, dblp, K, r, S, "avg", greedy)
    assert len(result) <= r
