"""Figure 2 (Exp-I) — running time vs k: Naive / Improve / Approx.

Representative dataset: email (the paper's smallest timing panel).  The
expected shape: Naive is slowest and speeds up as k grows; Improve and
Approx are comparable, Approx at or below Improve.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import once
from repro.influential.improved import tic_improved
from repro.influential.naive_sum import sum_naive

K_VALUES = (4, 6, 8, 10)
R = 5


@pytest.mark.parametrize("k", K_VALUES)
def test_bench_naive(benchmark, email, k):
    benchmark.group = f"fig2-email-k{k}"
    result = once(benchmark, sum_naive, email, k, R)
    benchmark.extra_info["r_values"] = [round(v, 6) for v in result.values()]
    assert len(result) <= R


@pytest.mark.parametrize("k", K_VALUES)
def test_bench_improve(benchmark, email, k):
    benchmark.group = f"fig2-email-k{k}"
    result = once(benchmark, tic_improved, email, k, R)
    benchmark.extra_info["r_values"] = [round(v, 6) for v in result.values()]
    assert len(result) <= R


@pytest.mark.parametrize("k", K_VALUES)
def test_bench_approx(benchmark, email, k):
    benchmark.group = f"fig2-email-k{k}"
    result = once(benchmark, tic_improved, email, k, R, None, 0.1)
    assert len(result) <= R


def test_shape_naive_slowest_improve_close_to_approx(email):
    """The figure's qualitative claim, asserted directly."""
    from repro.bench.runner import time_call

    t_naive, naive = time_call(lambda: sum_naive(email, 6, R))
    t_improve, improve = time_call(lambda: tic_improved(email, 6, R))
    t_approx, __ = time_call(lambda: tic_improved(email, 6, R, eps=0.1))
    assert t_naive > t_improve
    assert t_naive > t_approx
    # And both exact algorithms agree on the answer.
    assert naive.values() == pytest.approx(improve.values())
