"""Kernel-tier receipts: dispatched backend vs the pure-numpy fallback.

PR 8 ported the three hottest profile entries — the cascade peel, the
mask BFS behind component splits, the core-decomposition inner loop —
plus ``arc_supports`` to compiled Numba kernels (:mod:`repro.kernels`),
with the numpy implementations retained as an automatic fallback.  This
bench times each kernel twice on the same arrays: once through the
dispatch (whatever backend the process imported — ``numba`` with the
``[fast]`` extra installed, ``numpy`` otherwise) and once pinned to the
fallback.  On a Numba machine the ratio is the compiled speedup the PR
claims (>= 3x on the headline peel); on a fallback-only machine both
legs are the same code and every ratio sits at ~1.0 — the JSON records
``backend`` so the baseline diff knows which regime it is looking at.

``python benchmarks/bench_kernels.py`` writes ``BENCH_kernels.json``;
``--ci`` shrinks the graph for the gating regression check.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro import kernels
from repro.kernels import _numpy as fallback

DEFAULT_N = 200_000
DEFAULT_M = 1_600_000


# ----------------------------------------------------------------------
# pytest-benchmark entries (representative dataset, dispatched backend)
# ----------------------------------------------------------------------
def test_bench_core_numbers_kernel(benchmark, email):
    benchmark.group = "kernel-tier"
    csr = email.csr
    cores = benchmark(kernels.core_numbers, csr.indptr, csr.indices)
    assert cores.size == email.n


def test_bench_peel_kernel(benchmark, email):
    benchmark.group = "kernel-tier"
    csr = email.csr

    def peel():
        mask = np.ones(email.n, dtype=bool)
        degrees = csr.degrees().copy()
        kernels.peel_to_kcore(csr.indptr, csr.indices, mask, 10, degrees)
        return mask

    mask = benchmark(peel)
    assert mask.any()


def test_bench_components_kernel(benchmark, email):
    benchmark.group = "kernel-tier"
    csr = email.csr
    mask = np.ones(email.n, dtype=bool)
    pieces = benchmark(
        kernels.components_of_mask, csr.indptr, csr.indices, mask
    )
    assert sum(piece.size for piece in pieces) == email.n


# ----------------------------------------------------------------------
# Standalone dispatch-vs-fallback comparison
# ----------------------------------------------------------------------
def _bench_graph(n: int, m: int, seed: int):
    from repro.graphs.generators.random_graphs import gnm_random_graph

    graph = gnm_random_graph(n, m, seed=seed)
    graph.csr  # flatten once, outside the timed region
    return graph


def _forward_arcs(csr):
    """The degree orientation ``edge_supports`` feeds to the kernel."""
    n = csr.n
    degree = csr.degrees()
    order = np.lexsort((np.arange(n), degree))
    position = np.empty(n, dtype=np.int64)
    position[order] = np.arange(n)
    src = np.repeat(np.arange(n, dtype=np.int64), degree)
    keep = position[src] < position[csr.indices]
    fdst = csr.indices[keep]
    fptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src[keep], minlength=n), out=fptr[1:])
    return fptr, fdst


def _timed(fn, repeats: int):
    times = []
    result = None
    for __ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return min(times), result


def measure_kernel_speedups(
    n: int = DEFAULT_N,
    m: int = DEFAULT_M,
    k: int = 10,
    seed: int = 7,
    repeats: int = 3,
) -> dict:
    """Dispatch-vs-fallback timings per kernel, as a JSON-ready dict."""
    graph = _bench_graph(n, m, seed)
    csr = graph.csr
    fptr, fdst = _forward_arcs(csr)
    full_mask = np.ones(csr.n, dtype=bool)

    def run_peel(impl):
        mask = full_mask.copy()
        degrees = csr.degrees().copy()
        impl.peel_to_kcore(csr.indptr, csr.indices, mask, k, degrees)
        return mask

    cases = {
        "peel_to_kcore": run_peel,
        "components_of_mask": lambda impl: impl.components_of_mask(
            csr.indptr, csr.indices, full_mask
        ),
        "core_numbers": lambda impl: impl.core_numbers(
            csr.indptr, csr.indices
        ),
        "arc_supports": lambda impl: impl.arc_supports(fptr, fdst),
    }
    if kernels.NUMBA_AVAILABLE:
        # JIT warm-up outside the timed region (first call compiles; the
        # on-disk cache makes later processes skip this).
        for case in cases.values():
            case(kernels)
    report = {
        "benchmark": "kernel_tier",
        "backend": kernels.kernel_backend(),
        "parameters": {"k": k, "seed": seed, "repeats": repeats},
        "graph": {"model": "gnm", "n": graph.n, "m": graph.m},
        "kernels": {},
    }
    for name, case in cases.items():
        dispatch_seconds, dispatched = _timed(lambda: case(kernels), repeats)
        numpy_seconds, pure = _timed(lambda: case(fallback), repeats)
        if isinstance(dispatched, list):
            agree = len(dispatched) == len(pure) and all(
                np.array_equal(a, b) for a, b in zip(dispatched, pure)
            )
        else:
            agree = np.array_equal(dispatched, pure)
        report["kernels"][name] = {
            "numpy_seconds": round(numpy_seconds, 5),
            "dispatch_seconds": round(dispatch_seconds, 5),
            "speedup": round(numpy_seconds / dispatch_seconds, 2),
            "results_agree": bool(agree),
        }
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=DEFAULT_N)
    parser.add_argument("--m", type=int, default=DEFAULT_M)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--ci", action="store_true",
        help="shrunk graph for the gating CI regression check",
    )
    parser.add_argument(
        "--output", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_kernels.json",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="after measuring, diff speedups against this committed report "
        "(gating; a regression past tolerance fails the run)",
    )
    args = parser.parse_args()
    if args.ci:
        args.n, args.m = 50_000, 400_000
    report = measure_kernel_speedups(
        n=args.n, m=args.m, k=args.k, repeats=args.repeats
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {args.output}")
    if args.baseline is not None and args.baseline.exists():
        raise SystemExit(compare_to_baseline(args.output, args.baseline))


def compare_to_baseline(
    fresh: pathlib.Path, baseline: pathlib.Path, tolerance: float = 0.7
) -> int:
    """Gating diff: nonzero when kernel speedups regress past ``tolerance``
    times the committed baseline (or dispatch and fallback disagree).
    Ratios are only comparable within one backend regime — a numba run
    diffed against a numpy baseline (or vice versa) is skipped with a note
    instead of a spurious failure.
    """
    from baseline_diff import report_ratio_metrics

    fresh_report = json.loads(fresh.read_text())
    baseline_report = json.loads(baseline.read_text())
    metrics, notes, failures = [], [], []
    fresh_backend = fresh_report.get("backend")
    base_backend = baseline_report.get("backend")
    if fresh_backend != base_backend:
        notes.append(
            f"backend regimes differ (fresh={fresh_backend}, "
            f"baseline={base_backend}) — speedup ratios are not comparable, "
            f"all kernels skipped"
        )
    else:
        for name, entry in fresh_report.get("kernels", {}).items():
            reference = baseline_report.get("kernels", {}).get(name)
            if reference is None:
                continue
            if not entry.get("results_agree", False):
                failures.append(f"{name}: dispatch/fallback results disagree")
            metrics.append(
                (
                    f"{name} dispatch/numpy speedup",
                    entry["speedup"],
                    reference["speedup"],
                )
            )
    return report_ratio_metrics(
        "bench_kernels", metrics, tolerance=tolerance, notes=notes,
        failures=failures,
    )


if __name__ == "__main__":
    main()
