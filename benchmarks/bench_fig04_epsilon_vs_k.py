"""Figure 4 (Exp-III) — Approx running time vs k for several eps.

Expected shape: the curves for different eps nearly coincide (the paper:
"the approximated algorithm is insensitive to eps").
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import once
from repro.influential.improved import tic_improved

K_VALUES = (4, 6, 8, 10)
EPS_VALUES = (0.01, 0.1, 0.5)
R = 5


@pytest.mark.parametrize("k", K_VALUES)
@pytest.mark.parametrize("eps", EPS_VALUES)
def test_bench_approx_eps(benchmark, email, k, eps):
    benchmark.group = f"fig4-email-k{k}"
    result = once(benchmark, tic_improved, email, k, R, None, eps)
    assert len(result) <= R


def test_shape_insensitive_to_eps(email):
    from repro.bench.runner import time_call

    times = {}
    for eps in EPS_VALUES:
        t, __ = time_call(lambda: tic_improved(email, 6, R, eps=eps))
        times[eps] = t
    # Within an order of magnitude of each other (paper: nearly unaltered).
    assert max(times.values()) < 10 * min(times.values()) + 0.05
