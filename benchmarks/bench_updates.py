"""Edge-update deltas vs full rebuilds: the cost of a changing graph.

Before PR 5, any topology change reset the whole serving stack through
``replace_graph`` — re-copying the adjacency, re-flattening the CSR (the
O(m log m) lexsort plus a Python pass over every set) and re-peeling the
full core decomposition.  This benchmark measures what
:class:`repro.graphs.delta.GraphDelta` buys instead: a single-edge
insert or delete applied through ``QueryService.update_edges`` — patched
CSR arrays, incrementally repaired core numbers, scoped invalidation —
against that rebuild path, on the PR 1/2 reference graph G(50k, 400k).

Every measured update is verified: after the deltas, query results on
the updated service must be byte-identical to cold runs against a
from-scratch rebuild of the final graph, on **both** backends, and the
repaired core numbers must equal a full re-decomposition
(``results_agree`` in the report).

``python benchmarks/bench_updates.py`` writes ``BENCH_updates.json``;
``--ci`` shrinks the graph for the gating CI smoke diff against the
committed ``BENCH_updates_ci_baseline.json``.  The pytest-benchmark
entries below cover the email stand-in.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro.core.decomposition import core_decomposition
from repro.graphs.builder import graph_from_edges
from repro.graphs.delta import GraphDelta
from repro.graphs.graph import Graph
from repro.influential.api import top_r_communities
from repro.serving.query import InfluentialQuery
from repro.serving.service import QueryService

DEFAULT_EDGES = 8

VERIFY_QUERIES = [
    InfluentialQuery(k=10, r=5, f="sum", eps=0.1),
    InfluentialQuery(k=8, r=3, f="sum-surplus(1)", eps=0.1),
]


# ----------------------------------------------------------------------
# pytest-benchmark entries (representative dataset)
# ----------------------------------------------------------------------
def _flip_edge(graph):
    """A deterministic absent edge between well-connected vertices."""
    degrees = graph.degrees()
    u = int(np.argmax(degrees))
    v = next(
        x for x in np.argsort(degrees)[::-1].tolist()
        if x != u and x not in graph.adjacency[u]
    )
    return (u, v) if u < v else (v, u)


def test_bench_single_edge_delta_email(benchmark, email):
    benchmark.group = "edge-updates"
    service = QueryService(email)
    edge = _flip_edge(email)

    def flip():
        service.update_edges(insert=[edge])
        service.update_edges(delete=[edge])

    benchmark(flip)
    assert service.graph.m == email.m


def test_bench_single_edge_rebuild_email(benchmark, email):
    benchmark.group = "edge-updates"
    service = QueryService(email)
    edge = _flip_edge(email)

    def rebuild():
        service.replace_graph(_rebuilt_with(service.graph, insert=[edge]))
        service.replace_graph(_rebuilt_with(service.graph, delete=[edge]))

    benchmark(rebuild)
    assert service.graph.m == email.m


def test_delta_equals_rebuild_on_email(email):
    edge = _flip_edge(email)
    report = GraphDelta(email).apply(insert=[edge])
    assert np.array_equal(
        report.core_numbers, core_decomposition(report.graph)
    )


# ----------------------------------------------------------------------
# Standalone old-vs-new comparison
# ----------------------------------------------------------------------
def _weighted_gnm(n, m, seed):
    from repro.graphs.generators.random_graphs import gnm_random_graph
    from repro.utils.rng import make_rng

    graph = gnm_random_graph(n, m, seed=seed)
    graph = graph.with_weights(make_rng(seed + 1).uniform(0.0, 100.0, graph.n))
    graph.csr  # noqa: B018 — warm: flattening is per-topology, not per-update
    return graph


def _rebuilt_with(graph, insert=(), delete=()):
    """What the pre-delta world paid: a from-scratch Graph (fresh CSR)."""
    adjacency = [set(neigh) for neigh in graph.adjacency]
    for u, v in delete:
        adjacency[u].discard(v)
        adjacency[v].discard(u)
    for u, v in insert:
        adjacency[u].add(v)
        adjacency[v].add(u)
    return Graph(adjacency, graph.weights, labels=graph.labels, _trusted=True)


def _pick_edges(graph, count, seed):
    """``count`` absent edges between random existing vertices."""
    rng = np.random.default_rng(seed)
    picked = []
    while len(picked) < count:
        u, v = (int(x) for x in rng.integers(0, graph.n, 2))
        if u == v or v in graph.adjacency[u]:
            continue
        edge = (u, v) if u < v else (v, u)
        if edge not in picked:
            picked.append(edge)
    return picked


def _verify(service, backend_pool=("set", "csr")):
    """Updated-service answers == cold rebuild answers, both backends."""
    cold_graph = graph_from_edges(
        [
            (u, v)
            for u in range(service.graph.n)
            for v in service.graph.adjacency[u]
            if u < v
        ],
        weights=service.graph.weights,
        n=service.graph.n,
    )
    if not np.array_equal(
        service.core_numbers, core_decomposition(cold_graph)
    ):
        return False
    for query in VERIFY_QUERIES:
        served = service.submit(query)
        # One served answer, checked against a cold run under *each*
        # backend (cache keys collapse backends, so submitting per
        # backend would just re-read the cache).
        for backend in backend_pool:
            cold = top_r_communities(
                cold_graph, backend=backend, **query.solver_kwargs()
            )
            if served != cold or served.values() != cold.values():
                return False
    return True


def measure_update_speedups(
    n: int = 50_000,
    m: int = 400_000,
    edges: int = DEFAULT_EDGES,
    seed: int = 7,
) -> dict:
    """Single-edge delta-apply vs replace_graph rebuild, JSON-ready.

    Each sampled edge is inserted then deleted through
    ``update_edges`` (timed separately), and the same topology flips are
    replayed through the old ``replace_graph`` path; reported seconds are
    best-of over the sampled edges, the headline ``speedup`` is the
    *worse* of insert/delete against the rebuild.
    """
    graph = _weighted_gnm(n, m, seed)
    service = QueryService(graph)
    flips = _pick_edges(graph, edges, seed + 2)

    insert_times, delete_times = [], []
    for edge in flips:
        start = time.perf_counter()
        service.update_edges(insert=[edge])
        insert_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        service.update_edges(delete=[edge])
        delete_times.append(time.perf_counter() - start)
    results_agree = _verify(service)

    rebuild_service = QueryService(graph)
    rebuild_times = []
    for edge in flips[: max(2, edges // 2)]:
        start = time.perf_counter()
        rebuild_service.replace_graph(
            _rebuilt_with(rebuild_service.graph, insert=[edge])
        )
        rebuild_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        rebuild_service.replace_graph(
            _rebuilt_with(rebuild_service.graph, delete=[edge])
        )
        rebuild_times.append(time.perf_counter() - start)

    insert_seconds = min(insert_times)
    delete_seconds = min(delete_times)
    rebuild_seconds = min(rebuild_times)
    report = {
        "benchmark": "edge_update_deltas",
        "graph": {"model": "gnm", "n": graph.n, "m": graph.m},
        "parameters": {"edges_sampled": edges, "seed": seed},
        "single_edge": {
            "delta_insert_seconds": round(insert_seconds, 5),
            "delta_delete_seconds": round(delete_seconds, 5),
            "rebuild_seconds": round(rebuild_seconds, 5),
            "insert_speedup": round(rebuild_seconds / insert_seconds, 2),
            "delete_speedup": round(rebuild_seconds / delete_seconds, 2),
        },
        "speedup": round(
            rebuild_seconds / max(insert_seconds, delete_seconds), 2
        ),
        "results_agree": results_agree,
        "service_stats": service.stats(),
    }
    return report


def compare_to_baseline(
    fresh: pathlib.Path, baseline: pathlib.Path, tolerance: float = 0.7
) -> int:
    """Gating diff of the delta-vs-rebuild speedup against the committed
    CI baseline (ratios only, shapes must match; a delta/cold answer
    disagreement fails too); console + step-summary output comes from
    :mod:`baseline_diff`."""
    from baseline_diff import report_ratio_metrics

    fresh_report = json.loads(fresh.read_text())
    base_report = json.loads(baseline.read_text())
    failures = []
    if not fresh_report.get("results_agree", False):
        failures.append("delta results disagree with cold rebuild")
    if fresh_report.get("graph") != base_report.get("graph"):
        return report_ratio_metrics(
            "bench_updates",
            [],
            tolerance=tolerance,
            notes=[
                "graph shapes differ from baseline — speedups are not "
                "comparable, skipped"
            ],
            failures=failures,
        )
    return report_ratio_metrics(
        "bench_updates",
        [
            (
                "single-edge insert vs rebuild",
                fresh_report["single_edge"]["insert_speedup"],
                base_report["single_edge"]["insert_speedup"],
            ),
            (
                "single-edge delete vs rebuild",
                fresh_report["single_edge"]["delete_speedup"],
                base_report["single_edge"]["delete_speedup"],
            ),
        ],
        tolerance=tolerance,
        failures=failures,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=50_000)
    parser.add_argument("--m", type=int, default=400_000)
    parser.add_argument("--edges", type=int, default=DEFAULT_EDGES)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--ci", action="store_true",
        help="shrunk graph for the gating CI smoke diff",
    )
    parser.add_argument(
        "--output", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_updates.json",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="after measuring, diff speedups against this committed report "
        "(gating; a regression past tolerance fails the run)",
    )
    args = parser.parse_args()
    if args.ci:
        args.n, args.m = 8_000, 64_000
    report = measure_update_speedups(
        n=args.n, m=args.m, edges=args.edges, seed=args.seed
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {args.output}")
    if args.baseline is not None and args.baseline.exists():
        raise SystemExit(compare_to_baseline(args.output, args.baseline))


if __name__ == "__main__":
    main()
