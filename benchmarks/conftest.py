"""Shared fixtures for the pytest-benchmark suite.

Each bench file covers one paper table/figure on *representative* datasets
(the exhaustive grid lives in ``python -m repro bench``): the small/fast
representative is email or dblp, the large representative orkut.  Dataset
construction is session-scoped so the suite pays it once.
"""

from __future__ import annotations

import pytest

from repro.bench.datasets import get_dataset


@pytest.fixture(scope="session")
def email():
    return get_dataset("email")


@pytest.fixture(scope="session")
def dblp():
    return get_dataset("dblp")


@pytest.fixture(scope="session")
def youtube():
    return get_dataset("youtube")


@pytest.fixture(scope="session")
def orkut():
    return get_dataset("orkut")


def once(benchmark, fn, *args, **kwargs):
    """Measure ``fn`` with a single round (solver benches are seconds-long;
    pytest-benchmark's default multi-round calibration would multiply the
    suite's runtime without adding information)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
