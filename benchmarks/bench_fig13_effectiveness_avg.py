"""Figure 13 (Exp-VII) — r-th influence value, Greedy vs Random, avg.

The paper's panels are Email / Youtube / FriendSter; we bench email.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import once
from repro.influential.local_search import local_search

R, S = 5, 20
K_VALUES = (4, 6, 8, 10)


@pytest.mark.parametrize("k", K_VALUES)
@pytest.mark.parametrize("greedy", (False, True), ids=("random", "greedy"))
def test_bench_email_quality(benchmark, email, k, greedy):
    benchmark.group = f"fig13-email-k{k}"
    result = once(benchmark, local_search, email, k, R, S, "avg", greedy)
    benchmark.extra_info["rth_value"] = result.rth_value(R)


def test_shape_greedy_dominates_random(email):
    wins = 0
    comparisons = 0
    for k in K_VALUES:
        greedy = local_search(email, k, R, S, "avg", greedy=True).rth_value(R)
        random_ = local_search(email, k, R, S, "avg", greedy=False).rth_value(R)
        comparisons += 1
        if greedy >= random_:
            wins += 1
    assert wins * 2 >= comparisons
