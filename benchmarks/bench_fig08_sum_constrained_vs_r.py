"""Figure 8 (Exp-V) — local search time vs r, sum, size-constrained.

Expected shape: insensitive to r (the algorithm computes more than r
candidates regardless of r).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import once
from repro.influential.local_search import local_search

K, S = 4, 20


@pytest.mark.parametrize("r", (5, 10, 15, 20))
@pytest.mark.parametrize("greedy", (False, True), ids=("random", "greedy"))
def test_bench_dblp(benchmark, dblp, r, greedy):
    benchmark.group = f"fig8-dblp-r{r}"
    result = once(benchmark, local_search, dblp, K, r, S, "sum", greedy)
    assert len(result) <= r


def test_shape_insensitive_to_r(dblp):
    from repro.bench.runner import time_call

    t_small, __ = time_call(lambda: local_search(dblp, K, 5, S, "sum"))
    t_large, __ = time_call(lambda: local_search(dblp, K, 20, S, "sum"))
    assert t_large < 3 * t_small + 0.05
