"""Label-constrained search: predicate pushdown vs query-then-filter.

The constrained-query tentpole pushes the label predicate into the CSR
seed-component filter: matching vertices are masked *before* the k-core
peel, so search never expands a community the predicate would reject.
This benchmark measures what that buys on the planted-label scenario —
a G(n, m) background carrying three dense labeled blocks (``team:0..2``
over a ``bg`` majority), with ``k`` chosen *below* the background
degeneracy so the unconstrained lattice is large while the constrained
answer is exactly the planted teams:

* **pushdown** — ``top_r_communities(..., labels={"prefix": "team:"})``,
  best-of-N: the complete constrained answer;
* **materialize** — filter-then-query: build ``G[matching]`` with
  :func:`repro.graphs.views.induced_subgraph`, solve unconstrained, map
  ids back (the correctness reference: must equal pushdown exactly);
* **query-then-filter** — the naive client-side strategy: unconstrained
  solves with escalating ``r`` (×4 per round up to a cap), post-filtering
  for all-matching communities.  On this scenario the background
  communities out-sum the teams, so escalation burns seconds without
  completing — the reported speedup is therefore a *lower bound*.

``python benchmarks/bench_constrained.py`` writes
``BENCH_constrained.json`` for the 50k/400k receipts; ``--ci`` shrinks
the graph for the gating CI diff against
``BENCH_constrained_ci_baseline.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.core.decomposition import core_decomposition
from repro.graphs.builder import graph_from_edges
from repro.graphs.views import induced_subgraph
from repro.influential.api import top_r_communities
from repro.influential.constraints import LabelPredicate, matching_mask

PREDICATE = {"prefix": "team:"}
BLOCKS = 3
BLOCK_SIZE = 40
INTRA_P = 0.6
REPEATS = 3
ESCALATION_FACTOR = 4
ESCALATION_CAP = 48


def planted_label_graph(n: int, m: int, seed: int = 7):
    """A G(n, m) background with three dense labeled blocks.

    Block vertices (ids ``0 .. 3*BLOCK_SIZE``) get ``team:<b>`` labels, a
    weight boost, and ~``INTRA_P`` intra-block edge density on top of the
    random background — dense enough that each team survives peels the
    background cannot, sparse enough that they stay planted needles.
    """
    from repro.graphs.generators.random_graphs import gnm_random_graph
    from repro.utils.rng import make_rng

    base = gnm_random_graph(n, m, seed=seed)
    rng = make_rng(seed + 1)
    edges = set(base.edges())
    blocks = []
    start = 0
    for __ in range(BLOCKS):
        block = list(range(start, start + BLOCK_SIZE))
        start += BLOCK_SIZE
        blocks.append(block)
        for i, u in enumerate(block):
            for v in block[i + 1 :]:
                if rng.random() < INTRA_P:
                    edges.add((u, v))
    graph = graph_from_edges(sorted(edges), n=n)
    weights = rng.uniform(0.0, 100.0, n)
    weights[: BLOCKS * BLOCK_SIZE] += 100.0
    labels = ["bg"] * n
    for b, block in enumerate(blocks):
        for v in block:
            labels[v] = f"team:{b}"
    graph = graph.with_weights(weights).with_labels(labels)
    graph.csr  # noqa: B018 — flatten outside every timed region
    return graph


def pick_k(graph) -> int:
    """One below the background degeneracy: the unconstrained k-core is
    still almost the whole graph, the planted teams comfortably survive."""
    cores = core_decomposition(graph)
    background = cores[BLOCKS * BLOCK_SIZE :]
    return max(2, int(background.max()) - 1)


def _best_of(fn, repeats=REPEATS):
    best, result = float("inf"), None
    for __ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


# ----------------------------------------------------------------------
# pytest-benchmark entries (small planted instance, exercised per-PR)
# ----------------------------------------------------------------------
def test_bench_constrained_pushdown(benchmark):
    from benchmarks.conftest import once

    benchmark.group = "constrained"
    graph = planted_label_graph(2_000, 16_000)
    k = pick_k(graph)

    result = once(
        benchmark, top_r_communities, graph, k, BLOCKS, "sum", labels=PREDICATE
    )
    assert len(result) >= 1
    names = graph.labels
    for community in result:
        assert all(names[v].startswith("team:") for v in community.vertices)


def test_pushdown_equals_filter_then_query():
    graph = planted_label_graph(2_000, 16_000)
    k = pick_k(graph)
    pushed = top_r_communities(graph, k, BLOCKS, "sum", labels=PREDICATE)
    mask = matching_mask(graph, LabelPredicate.from_json(PREDICATE))
    matching = [v for v in range(graph.n) if mask[v]]
    sub, __ = induced_subgraph(graph, matching)
    inner = top_r_communities(sub, k, BLOCKS, "sum")
    assert [sorted(matching[v] for v in c.vertices) for c in inner] == [
        sorted(c.vertices) for c in pushed
    ]
    assert pushed.values() == inner.values()


# ----------------------------------------------------------------------
# Standalone measurement
# ----------------------------------------------------------------------
def measure_constrained(
    n: int = 50_000, m: int = 400_000, r: int = BLOCKS, seed: int = 7
) -> dict:
    graph = planted_label_graph(n, m, seed)
    k = pick_k(graph)
    predicate = LabelPredicate.from_json(PREDICATE)
    mask = matching_mask(graph, predicate)
    matching = [v for v in range(graph.n) if mask[v]]

    # Leg 1: the pushdown fast path (complete constrained answer).
    pushdown_seconds, pushed = _best_of(
        lambda: top_r_communities(graph, k, r, "sum", labels=PREDICATE)
    )

    # Leg 2: filter-then-query — materialize G[matching], solve, map back.
    def materialized():
        sub, __ = induced_subgraph(graph, matching)
        return [
            (sorted(matching[v] for v in c.vertices), c.value)
            for c in top_r_communities(sub, k, r, "sum")
        ]

    materialize_seconds, mapped = _best_of(materialized)
    pushdown_equals_materialized = mapped == [
        (sorted(c.vertices), c.value) for c in pushed
    ]

    # Leg 3: query-then-filter — escalate r on the unconstrained lattice,
    # post-filtering, until r all-matching communities appear or the
    # escalation cap is reached (single pass: escalation dominates).
    postfilter_seconds, found, escalated_to = 0.0, 0, r
    while found < r and escalated_to < r * ESCALATION_CAP:
        escalated_to *= ESCALATION_FACTOR
        start = time.perf_counter()
        big = top_r_communities(graph, k, escalated_to, "sum")
        postfilter_seconds += time.perf_counter() - start
        found = sum(
            1 for c in big if all(mask[v] for v in c.vertices)
        )
        if len(big) < escalated_to:
            break  # lattice exhausted: nothing deeper to scan
    postfilter_complete = found >= r

    return {
        "benchmark": "constrained_pushdown",
        "graph": {
            "model": "gnm+planted",
            "n": graph.n,
            "m": graph.m,
            "blocks": BLOCKS,
            "block_size": BLOCK_SIZE,
        },
        "parameters": {
            "k": k,
            "r": r,
            "seed": seed,
            "predicate": PREDICATE,
            "matching_vertices": len(matching),
        },
        "pushdown": {
            "seconds": round(pushdown_seconds, 6),
            "communities": len(pushed),
            "sizes": [len(c.vertices) for c in pushed],
        },
        "materialize": {"seconds": round(materialize_seconds, 6)},
        "query_then_filter": {
            "seconds": round(postfilter_seconds, 6),
            "found": found,
            "escalated_to_r": escalated_to,
            "complete": postfilter_complete,
        },
        "constrained_nonempty": len(pushed) >= 1,
        "pushdown_equals_materialized": pushdown_equals_materialized,
        # Lower bound whenever query-then-filter gave up incomplete.
        "speedup_vs_query_then_filter": round(
            postfilter_seconds / pushdown_seconds, 2
        )
        if pushdown_seconds
        else float("inf"),
        "speedup_is_lower_bound": not postfilter_complete,
    }


def compare_to_baseline(
    fresh: pathlib.Path, baseline: pathlib.Path, tolerance: float = 0.5
) -> int:
    """Gating diff: correctness flags must hold, and the pushdown-vs-
    query-then-filter speedup must stay within tolerance of the committed
    baseline (graph shapes must match for ratios to be comparable)."""
    from baseline_diff import report_ratio_metrics

    fresh_report = json.loads(fresh.read_text())
    base_report = json.loads(baseline.read_text())
    failures = []
    if not fresh_report.get("pushdown_equals_materialized", True):
        failures.append("pushdown disagrees with filter-then-query")
    if not fresh_report.get("constrained_nonempty", True):
        failures.append("constrained answer came back empty")
    if fresh_report.get("graph") != base_report.get("graph"):
        return report_ratio_metrics(
            "bench_constrained",
            [],
            tolerance=tolerance,
            notes=[
                "graph shapes differ from baseline — speedups are not "
                "comparable, skipped"
            ],
            failures=failures,
        )
    return report_ratio_metrics(
        "bench_constrained",
        [
            (
                "pushdown vs query-then-filter",
                fresh_report["speedup_vs_query_then_filter"],
                base_report["speedup_vs_query_then_filter"],
            ),
        ],
        tolerance=tolerance,
        failures=failures,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=50_000)
    parser.add_argument("--m", type=int, default=400_000)
    parser.add_argument("--r", type=int, default=BLOCKS)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--ci", action="store_true",
        help="shrunk graph for the gating CI smoke diff",
    )
    parser.add_argument(
        "--output", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_constrained.json",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="after measuring, diff speedups against this committed report "
        "(gating; a regression past tolerance fails the run)",
    )
    args = parser.parse_args()
    if args.ci:
        args.n, args.m = 8_000, 64_000
    report = measure_constrained(n=args.n, m=args.m, r=args.r, seed=args.seed)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {args.output}")
    if args.baseline is not None and args.baseline.exists():
        raise SystemExit(compare_to_baseline(args.output, args.baseline))


if __name__ == "__main__":
    main()
