"""Serving-layer throughput: a mixed 200-query workload, cold vs pooled.

PR 1/2 made a *single* query fast; this benchmark measures what a serving
deployment actually buys on top — answering a realistic batch of repeated
and related queries through one :class:`repro.serving.service.QueryService`
(shared CSR, cached core decomposition, expansion-engine pool, keyed LRU
result cache) versus issuing the same batch as sequential cold
:func:`~repro.influential.api.top_r_communities` calls.

The workload models production traffic: a fixed catalogue of distinct
``(k, r, aggregator, eps)`` combinations — the sum family Algorithms 1/2
serve in milliseconds-to-seconds, plus above-``kmax`` probes — sampled
200 times under a Zipf-like popularity skew (popular queries repeat, the
long tail stays long).  min/max aggregators are excluded: their
whole-family peels are 100x slower per query and would turn a serving
benchmark into a solver benchmark.  The cold baseline keeps the graph's
own CSR cache warm (that is a per-graph cost, not a per-query one), so
the speedup isolates genuine serving-layer reuse.  Every pooled answer is
checked for equality against its cold twin (``results_agree``) — the same
guarantee the oracle layer under ``tests/serving`` enforces on small
graphs.

``python benchmarks/bench_serving.py`` writes ``BENCH_serving.json``;
``--ci`` shrinks the graph for the gating CI smoke diff against the
committed ``BENCH_serving_ci_baseline.json``; ``--workers N`` additionally
measures the process-pool sharding path (informational — on few-core
runners worker startup dominates).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro.influential.api import top_r_communities
from repro.serving.query import InfluentialQuery
from repro.serving.service import QueryService

WORKLOAD_SIZE = 200


# ----------------------------------------------------------------------
# pytest-benchmark entries (representative dataset)
# ----------------------------------------------------------------------
def test_bench_serving_cold_email(benchmark, email):
    benchmark.group = "serving"
    workload = build_workload(email, seed=5, size=40)
    results = benchmark(
        lambda: [
            top_r_communities(email, **q.solver_kwargs()) for q in workload
        ]
    )
    assert len(results) == len(workload)


def test_bench_serving_pooled_email(benchmark, email):
    benchmark.group = "serving"
    workload = build_workload(email, seed=5, size=40)

    def pooled():
        return QueryService(email).submit_many(workload)

    results = benchmark(pooled)
    assert len(results) == len(workload)


def test_serving_matches_cold_on_email(email):
    workload = build_workload(email, seed=5, size=40)
    pooled = QueryService(email).submit_many(workload)
    for query, produced in zip(workload, pooled):
        assert produced == top_r_communities(email, **q_kwargs(query))


def q_kwargs(query: InfluentialQuery) -> dict:
    return query.solver_kwargs()


# ----------------------------------------------------------------------
# Workload construction
# ----------------------------------------------------------------------
def build_workload(
    graph, seed: int = 7, size: int = WORKLOAD_SIZE
) -> list[InfluentialQuery]:
    """``size`` queries over a fixed catalogue with Zipf-ish popularity.

    The catalogue crosses k x r x (aggregator, eps) over the sum family
    (all served by Algorithms 1/2) and adds above-kmax probes; sampling
    weights 1/rank make a handful of entries dominate, like production
    query logs.  Deterministic for a given ``seed``.
    """
    from repro.core.decomposition import core_decomposition

    kmax = int(core_decomposition(graph).max()) if graph.n else 0
    ks = sorted({max(2, kmax // 3), max(3, kmax // 2), max(4, 2 * kmax // 3),
                 max(5, kmax)})
    catalogue = [
        InfluentialQuery(k=k, r=r, f=f, eps=eps)
        for k in ks
        for r in (1, 5, 10)
        for f, eps in (
            ("sum", 0.0),
            ("sum", 0.1),
            ("sum-surplus(1)", 0.0),
            ("sum-surplus(2)", 0.1),
        )
    ]
    catalogue.append(InfluentialQuery(k=kmax + 50, r=5, f="sum"))
    catalogue.append(InfluentialQuery(k=kmax + 9, r=1, f="sum", eps=0.1))
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, len(catalogue) + 1, dtype=np.float64)
    popularity = (1.0 / ranks) / (1.0 / ranks).sum()
    # Shuffle which catalogue entry gets which popularity mass, so "most
    # popular" is not systematically the smallest-k entry.
    popularity = popularity[rng.permutation(len(catalogue))]
    picks = rng.choice(len(catalogue), size=size, p=popularity)
    return [catalogue[int(i)] for i in picks]


# ----------------------------------------------------------------------
# Standalone measurement
# ----------------------------------------------------------------------
def _weighted_gnm(n: int, m: int, seed: int):
    from repro.graphs.generators.random_graphs import gnm_random_graph
    from repro.utils.rng import make_rng

    graph = gnm_random_graph(n, m, seed=seed)
    graph = graph.with_weights(make_rng(seed + 1).uniform(0.0, 100.0, graph.n))
    graph.csr  # warm: per-graph cost, kept out of both sides of the measure
    return graph


def measure_serving_throughput(
    n: int = 8_000,
    m: int = 64_000,
    size: int = WORKLOAD_SIZE,
    seed: int = 7,
    workers: int | None = None,
) -> dict:
    """Cold-sequential vs pooled-service timings, as a JSON-ready dict."""
    graph = _weighted_gnm(n, m, seed)
    workload = build_workload(graph, seed=seed + 2, size=size)
    distinct = len({q.cache_key() for q in workload})

    start = time.perf_counter()
    cold = [top_r_communities(graph, **q.solver_kwargs()) for q in workload]
    cold_seconds = time.perf_counter() - start

    service = QueryService(graph)
    start = time.perf_counter()
    pooled = service.submit_many(workload)
    pooled_seconds = time.perf_counter() - start

    agree = all(
        p == c and p.values() == c.values() for p, c in zip(pooled, cold)
    )
    report = {
        "benchmark": "serving_throughput",
        "graph": {"model": "gnm", "n": graph.n, "m": graph.m},
        "workload": {
            "queries": len(workload),
            "distinct": distinct,
            "seed": seed,
        },
        "cold": {
            "seconds": round(cold_seconds, 4),
            "qps": round(len(workload) / cold_seconds, 2),
        },
        "pooled": {
            "seconds": round(pooled_seconds, 4),
            "qps": round(len(workload) / pooled_seconds, 2),
        },
        "speedup": round(cold_seconds / pooled_seconds, 2),
        "results_agree": agree,
        "service_stats": service.stats(),
    }
    if workers:
        fresh = QueryService(graph)
        start = time.perf_counter()
        sharded = fresh.submit_many(workload, workers=workers)
        workers_seconds = time.perf_counter() - start
        report["workers"] = {
            "count": workers,
            "seconds": round(workers_seconds, 4),
            "qps": round(len(workload) / workers_seconds, 2),
            "results_agree": sharded == pooled,
        }
    return report


def compare_to_baseline(
    fresh: pathlib.Path, baseline: pathlib.Path, tolerance: float = 0.7
) -> int:
    """Gating diff: nonzero when the fresh pooled-vs-cold speedup regresses
    past ``tolerance`` times the committed baseline, or pooled results
    disagree with the cold run.  Only the speedup ratio is compared —
    absolute times differ by runner — and only when the graph and workload
    shapes match."""
    from baseline_diff import report_ratio_metrics

    fresh_report = json.loads(fresh.read_text())
    base_report = json.loads(baseline.read_text())
    failures = []
    if not fresh_report.get("results_agree", False):
        failures.append("pooled results disagree with cold run")
    same_shape = (
        fresh_report.get("graph") == base_report.get("graph")
        and fresh_report.get("workload") == base_report.get("workload")
    )
    if not same_shape:
        return report_ratio_metrics(
            "bench_serving",
            [],
            tolerance=tolerance,
            notes=[
                "graph/workload shapes differ from baseline — speedups are "
                "not comparable, skipped"
            ],
            failures=failures,
        )
    return report_ratio_metrics(
        "bench_serving",
        [
            (
                "pooled vs cold speedup",
                fresh_report["speedup"],
                base_report["speedup"],
            )
        ],
        tolerance=tolerance,
        failures=failures,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=8_000)
    parser.add_argument("--m", type=int, default=64_000)
    parser.add_argument("--size", type=int, default=WORKLOAD_SIZE)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="also measure the process-pool sharding path",
    )
    parser.add_argument(
        "--ci", action="store_true",
        help="shrunk graph for the gating CI smoke diff",
    )
    parser.add_argument(
        "--output", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_serving.json",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="after measuring, diff the speedup against this committed "
        "report (gating; a regression past tolerance fails the run)",
    )
    args = parser.parse_args()
    if args.ci:
        args.n, args.m = 2_000, 16_000
    report = measure_serving_throughput(
        n=args.n, m=args.m, size=args.size, seed=args.seed,
        workers=args.workers,
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {args.output}")
    if args.baseline is not None and args.baseline.exists():
        raise SystemExit(compare_to_baseline(args.output, args.baseline))


if __name__ == "__main__":
    main()
