"""Shared warn-only baseline diffing for the CI benchmark smoke runs.

Every ``bench_*.py --baseline`` run compares the speedup *ratios* of a
fresh CI-sized measurement against a committed baseline report (absolute
times differ per runner, ratios mostly do not) and used to carry its own
copy of the compare loop.  This module is the single implementation:

* :func:`report_ratio_metrics` prints the familiar ``ok`` /
  ``::warning::`` console lines (never fails the run — the diff is
  advisory), and
* appends a Markdown table to ``$GITHUB_STEP_SUMMARY`` when Actions
  provides one, so regressions are visible on the run page itself
  instead of buried in annotation noise.

A bench whose shapes do not match its baseline (different graph or
workload sizes) passes ``notes=[...]`` with no metrics: the summary then
records *why* the comparison was skipped rather than silently showing
nothing.
"""

from __future__ import annotations

import os
import pathlib
from typing import Iterable, Sequence

__all__ = ["report_ratio_metrics"]

_OK = "✅ ok"
_REGRESSED = "⚠️ regressed"


def _summary_path() -> "pathlib.Path | None":
    raw = os.environ.get("GITHUB_STEP_SUMMARY", "").strip()
    return pathlib.Path(raw) if raw else None


def report_ratio_metrics(
    bench: str,
    metrics: Iterable[Sequence[object]],
    tolerance: float = 0.7,
    notes: Iterable[str] = (),
) -> int:
    """Diff ``(label, fresh, baseline)`` speedup triples, warn-only.

    A metric regresses when ``fresh < baseline * tolerance``.  Always
    returns 0: regressions surface as ``::warning::`` annotations plus a
    row in the step-summary table, never as a failed build — absolute CI
    runner performance is too noisy to gate merges on.
    """
    rows: list[tuple[str, str, str, str, str]] = []
    for label, fresh, baseline in metrics:
        fresh_value, base_value = float(fresh), float(baseline)
        floor = base_value * tolerance
        if fresh_value < floor:
            status = _REGRESSED
            print(
                f"::warning::{bench}: fresh {label} {fresh_value}x is below "
                f"{tolerance:.0%} of the committed baseline {base_value}x"
            )
        else:
            status = _OK
            print(
                f"{bench}: fresh {label} {fresh_value}x vs baseline "
                f"{base_value}x — ok"
            )
        rows.append(
            (label, f"{fresh_value}x", f"{base_value}x", f"{floor:.2f}x", status)
        )
    notes = list(notes)
    for note in notes:
        print(f"{bench}: {note}")
    _append_step_summary(bench, rows, tolerance, notes)
    return 0


def _append_step_summary(
    bench: str,
    rows: list[tuple[str, str, str, str, str]],
    tolerance: float,
    notes: list[str],
) -> None:
    path = _summary_path()
    if path is None:
        return
    lines = [f"### `{bench}` vs committed CI baseline", ""]
    if rows:
        lines += [
            f"| metric | fresh | baseline | floor ({tolerance:.0%}) | status |",
            "|---|---:|---:|---:|:---|",
        ]
        lines += [
            f"| {label} | {fresh} | {baseline} | {floor} | {status} |"
            for label, fresh, baseline, floor, status in rows
        ]
    for note in notes:
        lines.append(f"> {note}")
    lines.append("")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
