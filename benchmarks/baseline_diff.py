"""Shared *gating* baseline diffing for the CI benchmark smoke runs.

Every ``bench_*.py --baseline`` run compares the speedup *ratios* of a
fresh CI-sized measurement against a committed baseline report (absolute
times differ per runner, ratios mostly do not).  Until PR 9 this diff was
warn-only; it now funnels through the regression comparator
(:mod:`repro.bench.compare`) and **fails the build** on a regression:

* :func:`report_ratio_metrics` prints the familiar ``ok`` / ``::error::``
  console lines, appends the comparator's Markdown verdict table to
  ``$GITHUB_STEP_SUMMARY``, and returns the exit code the bench's
  ``main()`` must propagate — 0 on PASS (or a waived regression), 1 on
  FAIL.
* ``failures=[...]`` carries non-numeric hard failures (a fast path
  disagreeing with its oracle); they gate exactly like a slowdown.
* Intentional regressions are acknowledged in ``benchmarks/waivers.json``
  (see :func:`repro.bench.compare.load_waivers`) — matched metrics render
  as ``waived`` and do not fail the build.

A bench whose shapes do not match its baseline (different graph or
workload sizes) passes ``notes=[...]`` with no metrics: the summary then
records *why* the comparison was skipped rather than silently showing
nothing, and the run passes (shape drift is a grid-definition change, not
a regression).
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Sequence

from repro.bench.compare import compare_ratio_metrics, load_waivers
from repro.bench.report import append_step_summary, render_comparison

__all__ = ["WAIVERS_PATH", "report_ratio_metrics"]

#: The committed waiver file every bench diff consults.
WAIVERS_PATH = pathlib.Path(__file__).resolve().parent / "waivers.json"


def report_ratio_metrics(
    bench: str,
    metrics: Iterable[Sequence[object]],
    tolerance: float = 0.7,
    notes: Iterable[str] = (),
    failures: Iterable[str] = (),
    waivers_path: "pathlib.Path | None" = WAIVERS_PATH,
) -> int:
    """Diff ``(label, fresh, baseline)`` speedup triples — gating.

    A metric regresses when ``fresh < baseline * tolerance``; a fresh
    value at least as good as its baseline can never regress.  Returns
    the process exit code: 1 when any unwaived metric (or hard
    ``failure``) regressed, 0 otherwise.
    """
    report = compare_ratio_metrics(
        bench,
        metrics,
        tolerance=tolerance,
        notes=notes,
        failures=failures,
        waivers=load_waivers(waivers_path),
    )
    for metric in report.metrics:
        if metric.status == "regressed":
            if metric.fresh is None:  # a hard failure, not a slowdown
                print(f"::error::{bench}: {metric.metric}")
            else:
                print(
                    f"::error::{bench}: {metric.metric} regressed — fresh "
                    f"{metric.fresh} vs baseline {metric.baseline} "
                    f"(threshold {metric.threshold})"
                )
        elif metric.status == "waived":
            print(f"::notice::{bench}: {metric.metric} — {metric.detail}")
        else:
            print(
                f"{bench}: {metric.metric} fresh {metric.fresh} vs "
                f"baseline {metric.baseline} — ok"
            )
    for note in report.notes:
        print(f"{bench}: {note}")
    append_step_summary(render_comparison(report))
    print(f"{bench}: verdict {report.verdict}")
    return report.exit_code
