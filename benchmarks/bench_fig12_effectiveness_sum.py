"""Figure 12 (Exp-VII) — r-th influence value, Greedy vs Random, sum.

The paper's panels are DBLP / Orkut / LiveJournal; we bench dblp and
assert the headline claim: greedy's r-th value is at least random's on a
majority of settings (the plotted bars always favour greedy).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import once
from repro.influential.local_search import local_search

R, S = 5, 20
K_VALUES = (4, 6, 8, 10)


@pytest.mark.parametrize("k", K_VALUES)
@pytest.mark.parametrize("greedy", (False, True), ids=("random", "greedy"))
def test_bench_dblp_quality(benchmark, dblp, k, greedy):
    benchmark.group = f"fig12-dblp-k{k}"
    result = once(benchmark, local_search, dblp, k, R, S, "sum", greedy)
    benchmark.extra_info["rth_value"] = result.rth_value(R)


def test_shape_greedy_dominates_random(dblp):
    wins = 0
    comparisons = 0
    for k in K_VALUES:
        greedy = local_search(dblp, k, R, S, "sum", greedy=True).rth_value(R)
        random_ = local_search(dblp, k, R, S, "sum", greedy=False).rth_value(R)
        comparisons += 1
        if greedy >= random_:
            wins += 1
    assert wins * 2 >= comparisons  # majority, as in the paper's bars
