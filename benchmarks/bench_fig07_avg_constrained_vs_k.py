"""Figure 7 (Exp-IV) — local search time vs k, avg, size-constrained."""

from __future__ import annotations

import pytest

from benchmarks.conftest import once
from repro.influential.local_search import local_search

R, S = 5, 20


@pytest.mark.parametrize("k", (4, 6, 8, 10))
@pytest.mark.parametrize("greedy", (False, True), ids=("random", "greedy"))
def test_bench_email(benchmark, email, k, greedy):
    benchmark.group = f"fig7-email-k{k}"
    result = once(benchmark, local_search, email, k, R, S, "avg", greedy)
    benchmark.extra_info["rth"] = result.rth_value(R)


# k = 20 would violate s >= k + 1 at the paper default s = 20 (a k-core
# needs k + 1 vertices), so the large-dataset sweep stops at 16 here.
@pytest.mark.parametrize("k", (8, 12, 16))
@pytest.mark.parametrize("greedy", (False, True), ids=("random", "greedy"))
def test_bench_orkut(benchmark, orkut, k, greedy):
    benchmark.group = f"fig7-orkut-k{k}"
    result = once(benchmark, local_search, orkut, k, R, S, "avg", greedy)
    benchmark.extra_info["rth"] = result.rth_value(R)


def test_avg_outputs_valid(email):
    from repro.hardness.certificates import certify_result_set

    result = local_search(email, 4, R, S, "avg", greedy=True)
    certify_result_set(email, result, k=4, s=S)
