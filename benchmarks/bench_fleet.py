"""Serving fleet: multi-process qps scaling, per-worker RSS, shed tails.

Four measurements, all on the PR 3 mixed-workload catalogue:

* **Fleet scaling** — the same concurrent HTTP workload fired at fleets
  of 1, 2, and 4 members (one shared-memory substrate, SO_REUSEPORT or
  the proxy fallback), reported as qps + p50/p99 per member count, with
  every payload diffed against a cold solve (byte-identical bar).  The
  scaling ratio is qps(max members) / qps(1) — on a multi-core box this
  should approach the member count for solver-bound workloads; the
  report records ``cpus`` so a 1-CPU runner's flat ratio reads as what
  it is, not a regression.
* **Per-worker RSS** — three spawn-context children report their RSS:
  a control (interpreter + imports only), a worker initialised through
  the legacy pickled payload (eager adjacency sets), and a worker
  attached to the substrate (lazy adjacency over shared views).  The
  substrate's overhead over control is the fleet's true per-member
  footprint; the pickled overhead is what PR 7 removed.
* **Replication catch-up** — one edge batch POSTed to one member; time
  until a sibling reports ``replication_lag == 0``.
* **Queue bound** — a burst of distinct slow queries against depth-
  bounded and unbounded apps: the bound converts convoy waits into
  503 + Retry-After sheds.

``python benchmarks/bench_fleet.py`` writes ``BENCH_fleet.json``;
``--ci --baseline benchmarks/BENCH_fleet_ci_baseline.json`` is the
gating CI smoke (ratios only; absolute numbers are runner noise).
"""

from __future__ import annotations

import argparse
import http.client
import json
import multiprocessing
import os
import pathlib
import queue
import sys
import threading
import time

import numpy as np

from repro.influential.api import top_r_communities
from repro.serving.fleet import Fleet
from repro.serving.http import ServingApp, result_payload, run_server_in_thread
from repro.serving.query import InfluentialQuery
from repro.serving.service import QueryService
from repro.serving.substrate import SharedSubstrate

WORKLOAD_SIZE = 200
DEFAULT_CLIENTS = 8
DEFAULT_MEMBERS = (1, 2, 4)


def _build_workload(graph, seed: int, size: int) -> list[InfluentialQuery]:
    here = str(pathlib.Path(__file__).resolve().parent)
    if here not in sys.path:
        sys.path.insert(0, here)
    from bench_serving import build_workload

    return build_workload(graph, seed=seed, size=size)


def _weighted_gnm(n: int, m: int, seed: int):
    from repro.graphs.generators.random_graphs import gnm_random_graph
    from repro.utils.rng import make_rng

    graph = gnm_random_graph(n, m, seed=seed)
    graph = graph.with_weights(make_rng(seed + 1).uniform(0.0, 100.0, graph.n))
    graph.csr  # warm once, outside every measured region
    return graph


# ----------------------------------------------------------------------
# Fleet scaling
# ----------------------------------------------------------------------
def _client_worker(port, jobs, payloads, latencies):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=600)
    try:
        while True:
            job = jobs.get()
            if job is None:
                return
            index, query = job
            body = json.dumps(query.wire_dict())
            start = time.perf_counter()
            connection.request("POST", "/query", body=body)
            response = connection.getresponse()
            payload = json.loads(response.read())
            latencies[index] = time.perf_counter() - start
            payloads[index] = payload
            if response.status != 200:
                raise RuntimeError(f"HTTP {response.status}: {payload}")
    finally:
        connection.close()


def _fire_workload(port, workload, clients):
    payloads: list = [None] * len(workload)
    latencies: list = [None] * len(workload)
    jobs: "queue.Queue" = queue.Queue()
    threads = [
        threading.Thread(
            target=_client_worker,
            args=(port, jobs, payloads, latencies),
            daemon=True,
        )
        for __ in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for job in enumerate(workload):
        jobs.put(job)
    for __ in threads:
        jobs.put(None)
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return elapsed, payloads, latencies


def measure_fleet_scaling(
    graph, workload, expected, member_counts, clients, tmp: pathlib.Path
) -> dict:
    runs = []
    for members in member_counts:
        service = QueryService(graph)
        fleet = Fleet(
            service,
            members=members,
            log_path=tmp / f"repl-{members}.log",
        )
        fleet.start()
        try:
            # Warm nothing: every member starts cold, exactly like a
            # freshly-forked production fleet.
            elapsed, payloads, latencies = _fire_workload(
                fleet.port, workload, clients
            )
            # Catch-up probe: one mutation, then wait for lag 0 on a
            # (kernel- or proxy-chosen) member.  Insert then delete so
            # the graph ends every run identical.
            catch_start = time.perf_counter()
            connection = http.client.HTTPConnection(
                "127.0.0.1", fleet.port, timeout=60
            )
            connection.request(
                "POST", "/update-edges",
                body=json.dumps({"insert": [[0, 1]]})
                if 1 not in graph.adjacency[0]
                else json.dumps({"delete": [[0, 1]]}),
            )
            connection.getresponse().read()
            lag_deadline = time.time() + 30
            while time.time() < lag_deadline:
                connection.request("GET", "/healthz")
                health = json.loads(connection.getresponse().read())
                if health.get("replication_lag") == 0 and (
                    health.get("replication", {}).get("applied_seq") == 1
                ):
                    break
                time.sleep(0.02)
            connection.close()
            catch_up = time.perf_counter() - catch_start
        finally:
            fleet.stop()
        latency_ms = np.asarray(latencies, dtype=np.float64) * 1e3
        runs.append(
            {
                "members": members,
                "mode": fleet.mode,
                "seconds": round(elapsed, 4),
                "qps": round(len(workload) / elapsed, 2),
                "latency_p50_ms": round(
                    float(np.percentile(latency_ms, 50)), 3
                ),
                "latency_p99_ms": round(
                    float(np.percentile(latency_ms, 99)), 3
                ),
                "results_agree": payloads == expected,
                "catch_up_seconds": round(catch_up, 4),
            }
        )
    base_qps = runs[0]["qps"]
    return {
        "runs": runs,
        "scaling_ratio": round(runs[-1]["qps"] / base_qps, 2),
        "results_agree": all(r["results_agree"] for r in runs),
    }


# ----------------------------------------------------------------------
# Per-worker RSS: control vs pickled payload vs substrate attach
# ----------------------------------------------------------------------
def _rss_child(kind: str, payload, pipe) -> None:
    # Spawn-context child: a clean interpreter, so the RSS delta over the
    # control child is exactly the cost of standing up the worker state.
    from repro.serving.service import _worker_init
    from repro.utils.memory import rss_bytes as _rss

    if kind != "control":
        _worker_init(payload)
    pipe.send(_rss())
    pipe.close()


def measure_worker_rss(graph) -> dict:
    service = QueryService(graph)
    substrate = SharedSubstrate.publish(service)
    context = multiprocessing.get_context("spawn")
    try:
        results = {}
        jobs = {
            "control": None,
            "pickled": service._worker_payload(),
            "substrate": service.worker_initargs(substrate)[0],
        }
        for kind, payload in jobs.items():
            parent_end, child_end = context.Pipe()
            child = context.Process(
                target=_rss_child, args=(kind, payload, child_end)
            )
            child.start()
            results[kind] = int(parent_end.recv())
            child.join(timeout=60)
            parent_end.close()
    finally:
        substrate.unlink()
    pickled_overhead = max(1, results["pickled"] - results["control"])
    substrate_overhead = max(1, results["substrate"] - results["control"])
    return {
        "control_rss_bytes": results["control"],
        "pickled_worker_rss_bytes": results["pickled"],
        "substrate_worker_rss_bytes": results["substrate"],
        "pickled_overhead_bytes": pickled_overhead,
        "substrate_overhead_bytes": substrate_overhead,
        "rss_reduction_ratio": round(pickled_overhead / substrate_overhead, 2),
    }


# ----------------------------------------------------------------------
# Queue bound: shed the convoy instead of queueing it
# ----------------------------------------------------------------------
def measure_queue_bound(graph, workload, clients) -> dict:
    distinct = list({q.cache_key(): q for q in workload}.values())

    def _burst(app) -> dict:
        statuses: list = [None] * len(distinct)
        latencies: list = [None] * len(distinct)

        def _one(index, query):
            connection = http.client.HTTPConnection(
                "127.0.0.1", port, timeout=600
            )
            try:
                start = time.perf_counter()
                connection.request(
                    "POST", "/query", body=json.dumps(query.wire_dict())
                )
                response = connection.getresponse()
                response.read()
                latencies[index] = time.perf_counter() - start
                statuses[index] = response.status
            finally:
                connection.close()

        with run_server_in_thread(app) as base_url:
            port = int(base_url.rsplit(":", 1)[1])
            threads = [
                threading.Thread(target=_one, args=(i, q), daemon=True)
                for i, q in enumerate(distinct)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
        served = [
            latency * 1e3
            for latency, status in zip(latencies, statuses)
            if status == 200
        ]
        series = np.asarray(served, dtype=np.float64)
        return {
            "requests": len(distinct),
            "served": len(served),
            "shed": app.shed,
            "seconds": round(elapsed, 4),
            "served_p50_ms": round(float(np.percentile(series, 50)), 3),
            "served_p99_ms": round(float(np.percentile(series, 99)), 3),
        }

    depth = max(2, clients // 2)
    unbounded = _burst(ServingApp(QueryService(graph)))
    bounded = _burst(
        ServingApp(QueryService(graph), max_queue_depth=depth)
    )
    return {
        "burst_distinct_queries": len(distinct),
        "max_queue_depth": depth,
        "unbounded": unbounded,
        "bounded": bounded,
        "tail_ratio_unbounded": round(
            unbounded["served_p99_ms"] / max(unbounded["served_p50_ms"], 1e-9),
            2,
        ),
        "tail_ratio_bounded": round(
            bounded["served_p99_ms"] / max(bounded["served_p50_ms"], 1e-9), 2
        ),
    }


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def measure_fleet(
    n: int = 8_000,
    m: int = 64_000,
    size: int = WORKLOAD_SIZE,
    seed: int = 7,
    clients: int = DEFAULT_CLIENTS,
    member_counts=DEFAULT_MEMBERS,
) -> dict:
    import tempfile

    graph = _weighted_gnm(n, m, seed)
    workload = _build_workload(graph, seed=seed + 2, size=size)
    expected = [
        result_payload(query, top_r_communities(graph, **query.solver_kwargs()))
        for query in workload
    ]
    with tempfile.TemporaryDirectory() as tmp:
        scaling = measure_fleet_scaling(
            graph, workload, expected, member_counts, clients,
            pathlib.Path(tmp),
        )
    rss = measure_worker_rss(graph)
    shed = measure_queue_bound(graph, workload, clients)
    return {
        "benchmark": "fleet",
        "cpus": os.cpu_count(),
        "graph": {"model": "gnm", "n": graph.n, "m": graph.m},
        "workload": {
            "queries": len(workload),
            "distinct": len({q.cache_key() for q in workload}),
            "seed": seed,
            "clients": clients,
        },
        "scaling": scaling,
        "worker_rss": rss,
        "queue_bound": shed,
        "results_agree": scaling["results_agree"],
    }


def compare_to_baseline(
    fresh: pathlib.Path, baseline: pathlib.Path, tolerance: float = 0.7
) -> int:
    """Gating ratio diff: qps scaling and the RSS reduction factor, with a
    served/cold answer disagreement failing outright."""
    from baseline_diff import report_ratio_metrics

    fresh_report = json.loads(fresh.read_text())
    base_report = json.loads(baseline.read_text())
    failures = []
    if not fresh_report.get("results_agree", False):
        failures.append("served results disagree with cold run")
    same_shape = (
        fresh_report.get("graph") == base_report.get("graph")
        and fresh_report.get("workload") == base_report.get("workload")
        and fresh_report.get("cpus") == base_report.get("cpus")
    )
    if not same_shape:
        return report_ratio_metrics(
            "bench_fleet",
            [],
            tolerance=tolerance,
            notes=[
                "graph/workload/cpu shapes differ from baseline — ratios "
                "are not comparable, skipped"
            ],
            failures=failures,
        )
    return report_ratio_metrics(
        "bench_fleet",
        [
            (
                "fleet qps scaling",
                fresh_report["scaling"]["scaling_ratio"],
                base_report["scaling"]["scaling_ratio"],
            ),
            (
                "worker RSS reduction",
                fresh_report["worker_rss"]["rss_reduction_ratio"],
                base_report["worker_rss"]["rss_reduction_ratio"],
            ),
        ],
        tolerance=tolerance,
        failures=failures,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=8_000)
    parser.add_argument("--m", type=int, default=64_000)
    parser.add_argument("--size", type=int, default=WORKLOAD_SIZE)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--clients", type=int, default=DEFAULT_CLIENTS,
        help="concurrent HTTP client threads",
    )
    parser.add_argument(
        "--members", type=int, nargs="+", default=list(DEFAULT_MEMBERS),
        help="fleet sizes to sweep (qps scaling = last / first)",
    )
    parser.add_argument(
        "--ci", action="store_true",
        help="shrunk graph + fleet sweep for the gating CI smoke diff",
    )
    parser.add_argument(
        "--output", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_fleet.json",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="after measuring, diff the ratios against this committed "
        "report (gating; a regression past tolerance fails the run)",
    )
    args = parser.parse_args()
    if args.ci:
        args.n, args.m, args.size = 2_000, 16_000, 60
        args.members = [1, 2]
    report = measure_fleet(
        n=args.n, m=args.m, size=args.size, seed=args.seed,
        clients=args.clients, member_counts=tuple(args.members),
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {args.output}")
    if args.baseline is not None and args.baseline.exists():
        raise SystemExit(compare_to_baseline(args.output, args.baseline))


if __name__ == "__main__":
    main()
