"""HTTP serving: throughput + latency under a concurrent client, and the
snapshot cold-start win.

Two measurements on the PR 3 mixed 200-query workload (same catalogue and
Zipf-ish popularity as ``bench_serving.py``):

* **HTTP throughput/latency** — a :class:`~repro.serving.http.ServingApp`
  hosted in-process answers the workload fired by N concurrent keep-alive
  client threads; reported as queries/sec plus p50/p99 per-request
  latency, against the sequential cold :func:`~repro.influential.api
  .top_r_communities` baseline.  Every HTTP payload is diffed against a
  payload built from the cold run (``results_agree``), extending the
  serving layer's byte-identical guarantee across the wire.
* **Cold start** — time-to-ready for a fresh service (CSR arrays →
  validated graph → core decomposition) versus
  :func:`~repro.serving.store.load_service` on a saved snapshot (mmapped
  arrays, decompositions injected).  This is the restart path a deployed
  server takes.

Client threads share the server's process, so figures include client-side
JSON/GIL overhead — a deliberately conservative setup that still shows
the serving win; absolute numbers are runner-specific, which is why the
CI diff (``--ci --baseline ...``) compares only ratios, gating.

``python benchmarks/bench_http_serving.py`` writes
``BENCH_http_serving.json``.
"""

from __future__ import annotations

import argparse
import http.client
import json
import pathlib
import queue
import sys
import threading
import time

import numpy as np

from repro.influential.api import top_r_communities
from repro.serving.http import ServingApp, result_payload, run_server_in_thread
from repro.serving.query import InfluentialQuery
from repro.serving.service import QueryService
from repro.serving.store import load_service, save_snapshot

WORKLOAD_SIZE = 200
DEFAULT_CLIENTS = 8


def _build_workload(graph, seed: int, size: int) -> list[InfluentialQuery]:
    """The bench_serving catalogue (import works standalone and under pytest)."""
    here = str(pathlib.Path(__file__).resolve().parent)
    if here not in sys.path:
        sys.path.insert(0, here)
    from bench_serving import build_workload

    return build_workload(graph, seed=seed, size=size)


def _weighted_gnm(n: int, m: int, seed: int):
    from repro.graphs.generators.random_graphs import gnm_random_graph
    from repro.utils.rng import make_rng

    graph = gnm_random_graph(n, m, seed=seed)
    graph = graph.with_weights(make_rng(seed + 1).uniform(0.0, 100.0, graph.n))
    graph.csr  # warm: per-graph cost, kept out of both sides of the measure
    return graph


# ----------------------------------------------------------------------
# pytest-benchmark entries (representative dataset)
# ----------------------------------------------------------------------
def test_bench_http_cached_query_email(benchmark, email):
    """Round-trip cost of a cache-hit query over real HTTP."""
    benchmark.group = "http-serving"
    service = QueryService(email)
    with run_server_in_thread(service) as base_url:
        host = base_url.removeprefix("http://")
        connection = http.client.HTTPConnection(host, timeout=60)
        body = json.dumps({"k": 4, "r": 5, "f": "sum"})

        def round_trip():
            connection.request("POST", "/query", body=body)
            response = connection.getresponse()
            return json.loads(response.read())

        round_trip()  # populate the cache; the measure is serving overhead
        payload = benchmark(round_trip)
        connection.close()
    assert payload["count"] >= 1


def test_http_workload_matches_cold_on_email(email):
    workload = _build_workload(email, seed=5, size=30)
    service = QueryService(email)
    with run_server_in_thread(service) as base_url:
        host = base_url.removeprefix("http://")
        connection = http.client.HTTPConnection(host, timeout=120)
        for query in workload:
            connection.request(
                "POST", "/query", body=json.dumps(query.wire_dict())
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            cold = top_r_communities(email, **query.solver_kwargs())
            assert payload == result_payload(query, cold)
        connection.close()


# ----------------------------------------------------------------------
# Standalone measurement
# ----------------------------------------------------------------------
def _client_worker(
    host: str,
    jobs: "queue.Queue[tuple[int, InfluentialQuery] | None]",
    payloads: list,
    latencies: list,
) -> None:
    connection = http.client.HTTPConnection(host, timeout=600)
    try:
        while True:
            job = jobs.get()
            if job is None:
                return
            index, query = job
            body = json.dumps(query.wire_dict())
            start = time.perf_counter()
            connection.request("POST", "/query", body=body)
            response = connection.getresponse()
            payload = json.loads(response.read())
            latencies[index] = time.perf_counter() - start
            payloads[index] = payload
            if response.status != 200:
                raise RuntimeError(f"HTTP {response.status}: {payload}")
    finally:
        connection.close()


def measure_http_serving(
    n: int = 8_000,
    m: int = 64_000,
    size: int = WORKLOAD_SIZE,
    seed: int = 7,
    clients: int = DEFAULT_CLIENTS,
    workers: int = 0,
    snapshot_dir: "pathlib.Path | None" = None,
) -> dict:
    """Cold-sequential vs served-over-HTTP timings, as a JSON-ready dict."""
    import tempfile

    graph = _weighted_gnm(n, m, seed)
    workload = _build_workload(graph, seed=seed + 2, size=size)
    distinct = len({q.cache_key() for q in workload})

    # -- baseline: the same workload as sequential cold library calls ----
    start = time.perf_counter()
    cold = [top_r_communities(graph, **q.solver_kwargs()) for q in workload]
    cold_seconds = time.perf_counter() - start
    expected = [
        result_payload(query, result) for query, result in zip(workload, cold)
    ]

    # -- cold start: fresh build vs snapshot restore ---------------------
    csr = graph.csr
    start = time.perf_counter()
    from repro.graphs.builder import graph_from_csr_arrays

    rebuilt = graph_from_csr_arrays(
        csr.indptr, csr.indices, graph.weights, labels=graph.labels
    )
    fresh_service = QueryService(rebuilt)
    fresh_seconds = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        target = pathlib.Path(snapshot_dir or tmp) / "snapshot"
        save_snapshot(fresh_service, target)
        start = time.perf_counter()
        service = load_service(target)
        snapshot_seconds = time.perf_counter() - start

        # -- HTTP: concurrent clients over keep-alive connections --------
        app = ServingApp(service, workers=workers)
        payloads: list = [None] * len(workload)
        latencies: list = [None] * len(workload)
        jobs: "queue.Queue" = queue.Queue()
        with run_server_in_thread(app) as base_url:
            host = base_url.removeprefix("http://")
            threads = [
                threading.Thread(
                    target=_client_worker,
                    args=(host, jobs, payloads, latencies),
                    daemon=True,
                )
                for __ in range(clients)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for job in enumerate(workload):
                jobs.put(job)
            for __ in threads:
                jobs.put(None)
            for thread in threads:
                thread.join()
            http_seconds = time.perf_counter() - start

    agree = payloads == expected
    latency_ms = np.asarray(latencies, dtype=np.float64) * 1e3
    report = {
        "benchmark": "http_serving",
        "graph": {"model": "gnm", "n": graph.n, "m": graph.m},
        "workload": {
            "queries": len(workload),
            "distinct": distinct,
            "seed": seed,
        },
        "cold": {
            "seconds": round(cold_seconds, 4),
            "qps": round(len(workload) / cold_seconds, 2),
        },
        "http": {
            "clients": clients,
            "workers": workers,
            "seconds": round(http_seconds, 4),
            "qps": round(len(workload) / http_seconds, 2),
            "latency_p50_ms": round(float(np.percentile(latency_ms, 50)), 3),
            "latency_p99_ms": round(float(np.percentile(latency_ms, 99)), 3),
            "coalesced": app.coalesced,
        },
        "speedup": round(cold_seconds / http_seconds, 2),
        "cold_start": {
            "fresh_build_seconds": round(fresh_seconds, 4),
            "snapshot_load_seconds": round(snapshot_seconds, 4),
            "speedup": round(fresh_seconds / snapshot_seconds, 2),
        },
        "results_agree": agree,
        "service_stats": service.stats(),
    }
    return report


def compare_to_baseline(
    fresh: pathlib.Path, baseline: pathlib.Path, tolerance: float = 0.7
) -> int:
    """Gating diff: nonzero when the fresh HTTP speedup or the snapshot
    cold-start speedup regresses past ``tolerance`` times the committed
    baseline, or HTTP results disagree with the cold run.  Ratios only —
    absolute times differ by runner — and only when graph and workload
    shapes match."""
    from baseline_diff import report_ratio_metrics

    fresh_report = json.loads(fresh.read_text())
    base_report = json.loads(baseline.read_text())
    failures = []
    if not fresh_report.get("results_agree", False):
        failures.append("HTTP results disagree with cold run")
    same_shape = (
        fresh_report.get("graph") == base_report.get("graph")
        and fresh_report.get("workload") == base_report.get("workload")
    )
    if not same_shape:
        return report_ratio_metrics(
            "bench_http_serving",
            [],
            tolerance=tolerance,
            notes=[
                "graph/workload shapes differ from baseline — speedups are "
                "not comparable, skipped"
            ],
            failures=failures,
        )
    return report_ratio_metrics(
        "bench_http_serving",
        [
            ("serving speedup", fresh_report["speedup"], base_report["speedup"]),
            (
                "cold-start speedup",
                fresh_report["cold_start"]["speedup"],
                base_report["cold_start"]["speedup"],
            ),
        ],
        tolerance=tolerance,
        failures=failures,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=8_000)
    parser.add_argument("--m", type=int, default=64_000)
    parser.add_argument("--size", type=int, default=WORKLOAD_SIZE)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--clients", type=int, default=DEFAULT_CLIENTS,
        help="concurrent HTTP client threads",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="server-side solver worker processes (0 = solver thread)",
    )
    parser.add_argument(
        "--ci", action="store_true",
        help="shrunk graph for the gating CI smoke diff",
    )
    parser.add_argument(
        "--output", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_http_serving.json",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="after measuring, diff the speedups against this committed "
        "report (gating; a regression past tolerance fails the run)",
    )
    args = parser.parse_args()
    if args.ci:
        args.n, args.m = 2_000, 16_000
    report = measure_http_serving(
        n=args.n, m=args.m, size=args.size, seed=args.seed,
        clients=args.clients, workers=args.workers,
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {args.output}")
    if args.baseline is not None and args.baseline.exists():
        raise SystemExit(compare_to_baseline(args.output, args.baseline))


if __name__ == "__main__":
    main()
