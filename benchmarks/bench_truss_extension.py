"""Ablation — the k-truss extension vs the k-core baseline.

Not a paper figure: measures the cost of the stricter cohesiveness model
(truss decomposition is O(m^1.5) vs O(m) core decomposition) and checks
the structural relationship (k-truss inside (k-1)-core) at dataset scale.
"""

from __future__ import annotations


from benchmarks.conftest import once
from repro.core.decomposition import core_decomposition
from repro.core.kcore import maximal_kcore
from repro.influential.truss_search import truss_top_r_min, truss_top_r_sum
from repro.truss.decomposition import truss_decomposition
from repro.truss.ktruss import maximal_ktruss


def test_bench_truss_decomposition(benchmark, email):
    benchmark.group = "truss-vs-core"
    truss = once(benchmark, truss_decomposition, email)
    assert len(truss) == email.m


def test_bench_core_decomposition_baseline(benchmark, email):
    benchmark.group = "truss-vs-core"
    cores = once(benchmark, core_decomposition, email)
    assert len(cores) == email.n


def test_bench_truss_sum_search(benchmark, email):
    benchmark.group = "truss-search"
    result = once(benchmark, truss_top_r_sum, email, 4, 5)
    assert len(result) >= 1


def test_bench_truss_min_search(benchmark, email):
    benchmark.group = "truss-search"
    result = once(benchmark, truss_top_r_min, email, 4, 5)
    assert len(result) >= 1


def test_truss_inside_core_at_scale(email):
    for k in (3, 4, 5):
        assert maximal_ktruss(email, k) <= maximal_kcore(email, k - 1)


def test_truss_communities_tighter_than_core(email):
    """The truss model's top community is contained in some core community
    search space — its value cannot exceed the k-core component optimum."""
    from repro.influential.nonoverlap import tonic_sum_unconstrained

    core_top = tonic_sum_unconstrained(email, 3, 1)
    truss_top = truss_top_r_sum(email, 4, 1)
    assert truss_top[0].value <= core_top[0].value
