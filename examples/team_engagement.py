"""Application 1 — Engagement: plan a layoff that keeps the team strong.

The paper's first motivating scenario: a team is a graph (edges = working
relationships), each member has an ability score, and the leader must
shrink the team while keeping it cohesive (everyone retains at least k
collaborators) and strong.  Different aggregation functions express
different retention policies:

* ``max``            — keep a group containing the single best person;
* ``sum``  + size cap — the strongest team of at most s people;
* ``weight-density`` — strongest team after paying a per-head cost beta
  (the "balanced" layoff the paper describes);
* ``min``            — the team whose weakest member is strongest.

Run:  python examples/team_engagement.py
"""

from __future__ import annotations

from repro import top_r_communities
from repro.graphs.builder import GraphBuilder
from repro.utils.rng import make_rng

TEAM_SIZE = 60
KEEP_AT_MOST = 12
COHESION_K = 3  # everyone kept must retain >= 3 collaborators


def build_company() -> "Graph":  # noqa: F821 - doc name
    """A synthetic org: three squads with cross-squad collaborators.

    Squad A is senior (high ability, tight-knit); squad B is mixed; squad
    C is junior but large.  Deterministic seed, so the printout is stable.
    """
    rng = make_rng(9)
    builder = GraphBuilder(TEAM_SIZE)
    squads = {
        "A": (range(0, 15), 8.0, 10.0, 0.55),
        "B": (range(15, 35), 4.0, 8.0, 0.35),
        "C": (range(35, 60), 1.0, 5.0, 0.25),
    }
    for __, (members, lo, hi, p) in squads.items():
        members = list(members)
        for i, u in enumerate(members):
            builder.set_weight(u, round(float(rng.uniform(lo, hi)), 2))
            builder.set_label(u, f"emp{u:02d}")
            for v in members[i + 1 :]:
                if rng.random() < p:
                    builder.add_edge(u, v)
    # Cross-squad collaborations.
    for __ in range(40):
        u = int(rng.integers(TEAM_SIZE))
        v = int(rng.integers(TEAM_SIZE))
        if u != v and not builder.has_edge(u, v):
            builder.add_edge(u, v)
    return builder.build()


def main() -> None:
    company = build_company()
    print(
        f"company: {company.n} employees, {company.m} collaboration edges; "
        f"cohesion requirement k={COHESION_K}, retained team <= {KEEP_AT_MOST}"
    )

    print("\npolicy 1 — keep the star performer's circle (max):")
    result = top_r_communities(
        company, k=COHESION_K, r=1, f="max", s=KEEP_AT_MOST
    )
    print(result.describe(company))

    print("\npolicy 2 — strongest bounded team (sum, s=12):")
    result = top_r_communities(
        company, k=COHESION_K, r=3, f="sum", s=KEEP_AT_MOST, greedy=True
    )
    print(result.describe(company))

    print("\npolicy 3 — strongest after a per-head cost (weight-density, beta=4):")
    result = top_r_communities(
        company, k=COHESION_K, r=3, f="weight-density(beta=4)",
        s=KEEP_AT_MOST, greedy=True,
    )
    print(result.describe(company))

    print("\npolicy 4 — maximise the weakest kept member (min):")
    result = top_r_communities(company, k=COHESION_K, r=1, f="min")
    best = result[0]
    print(best.describe(company))
    print(
        f"    the weakest retained employee still scores {best.value} "
        f"(team of {best.size})"
    )

    print("\nlayoff summary under policy 2:")
    kept = set()
    for community in top_r_communities(
        company, k=COHESION_K, r=1, f="sum", s=KEEP_AT_MOST, greedy=True
    ):
        kept |= community.vertices
    laid_off = sorted(set(company.vertices()) - kept)
    print(f"    keep  ({len(kept)}): {sorted(kept)}")
    print(f"    release ({len(laid_off)}): first 15 shown {laid_off[:15]} ...")


if __name__ == "__main__":
    main()
