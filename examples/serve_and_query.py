"""Serve top-r queries over HTTP, then restart instantly from a snapshot.

The deployment story in one self-contained script:

1. stand up a :class:`~repro.serving.service.QueryService` on the email
   stand-in and expose it over HTTP (the same server ``repro serve``
   runs, hosted here on a background thread);
2. answer single queries, a batch, and a weight update through plain
   ``http.client`` requests — any HTTP client works the same way;
3. save a snapshot, "restart" by loading a second service from it, and
   show the reload recomputes nothing yet answers identically.

Run:  python examples/serve_and_query.py
"""

from __future__ import annotations

import http.client
import json
import tempfile
import time
from pathlib import Path

from repro.graphs.generators.snap_like import snap_like_graph
from repro.serving import (
    QueryService,
    load_service,
    run_server_in_thread,
    save_snapshot,
)


def call(base_url: str, method: str, path: str, payload=None):
    connection = http.client.HTTPConnection(
        base_url.removeprefix("http://"), timeout=120
    )
    try:
        body = None if payload is None else json.dumps(payload)
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return json.loads(response.read())
    finally:
        connection.close()


def main() -> None:
    graph = snap_like_graph("email")
    service = QueryService(graph)

    with run_server_in_thread(service) as base_url:
        print(f"serving {graph} at {base_url}\n")

        print("[1] GET /healthz:")
        print("   ", call(base_url, "GET", "/healthz"))

        print("\n[2] POST /query — one top-3 search under sum, k=4:")
        answer = call(base_url, "POST", "/query", {"k": 4, "r": 3, "f": "sum"})
        print(f"    {answer['query']} -> values {answer['values']}")

        print("\n[3] POST /batch — a mixed workload, answered in order:")
        batch = call(base_url, "POST", "/batch", [
            {"k": 4, "r": 3, "f": "sum"},          # repeated: cache hit
            {"k": 5, "r": 2, "f": "sum", "eps": 0.1},
            {"k": 4, "r": 2, "f": "min"},
        ])
        for entry in batch["results"]:
            print(f"    {entry['query']} -> {entry['values']}")

        print("\n[4] POST /update-weights — results invalidate, topology caches survive:")
        reweighted = call(base_url, "POST", "/update-weights", {
            "weights": [1.0] * graph.n,
        })
        print("   ", reweighted)
        answer = call(base_url, "POST", "/query", {"k": 4, "r": 3, "f": "sum"})
        print(f"    after reweight: values {answer['values']}")

        stats = call(base_url, "GET", "/stats")
        print(f"\n[5] GET /stats: cache {stats['result_cache']}, "
              f"http {stats['http']}")

    print("\n[6] snapshot save -> load: restart without recomputing")
    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "snapshot"
        save_snapshot(service, target)
        start = time.perf_counter()
        restarted = load_service(target)   # mmapped arrays, no re-peel
        elapsed = time.perf_counter() - start
        print(f"    reloaded n={restarted.graph.n}, m={restarted.graph.m}, "
              f"kmax={restarted.kmax} in {elapsed * 1e3:.1f} ms")
        same = restarted.submit({"k": 4, "r": 3, "f": "sum"})
        print(f"    served identically after restart: values {same.values()}")


if __name__ == "__main__":
    main()
