"""Walk through every claim of the paper's Examples 1 and 2, verified live.

The paper's running example (Figure 1) fixes an 11-vertex weighted graph
and states the top-r answers under sum, avg and min, a size-constrained
community, and the non-overlapping top-3 under avg.  This script recomputes
each claim with the library and prints PASS/FAIL — it is the executable
version of the reconstruction notes in
``repro/graphs/generators/examples.py``.

Run:  python examples/paper_figure1.py
"""

from __future__ import annotations

from repro import figure1_graph, top_r_communities
from repro.graphs.generators.examples import paper_vertex_set


def check(label: str, condition: bool) -> None:
    print(f"  [{'PASS' if condition else 'FAIL'}] {label}")


def main() -> None:
    graph = figure1_graph()
    print("Example 1 (k = 2):")

    total = graph.total_weight
    check("total influence of {v1..v11} is 203", total == 203.0)

    sum_top2 = top_r_communities(graph, k=2, r=2, f="sum")
    check(
        "sum top-1 is the whole graph",
        sum_top2[0].vertices == frozenset(range(11)),
    )
    check(
        "sum top-2 is {v1,v2,v4,...,v11} (drops v3)",
        sum_top2[1].vertices == paper_vertex_set("v1 v2 v4 v5 v6 v7 v8 v9 v10 v11"),
    )

    avg_top2 = top_r_communities(graph, k=2, r=2, f="avg", method="bruteforce")
    check("avg top-1 is {v1,v2,v4}", avg_top2[0].vertices == paper_vertex_set("v1 v2 v4"))
    check("avg top-1 value is 24", avg_top2[0].value == 24.0)
    check(
        "avg top-2 is {v6,v7,v11} (paper prints 22; exact value 67/3)",
        avg_top2[1].vertices == paper_vertex_set("v6 v7 v11"),
    )

    min_top2 = top_r_communities(graph, k=2, r=2, f="min")
    check("min top-1 is {v5,v7,v8}", min_top2[0].vertices == paper_vertex_set("v5 v7 v8"))
    check("min top-2 is {v3,v9,v10}", min_top2[1].vertices == paper_vertex_set("v3 v9 v10"))

    constrained = top_r_communities(graph, k=2, r=10, f="sum", s=4, method="exact")
    values = {c.vertices: c.value for c in constrained}
    check(
        "{v3,v6,v9,v10} is a size-4 community with value 40",
        values.get(paper_vertex_set("v3 v6 v9 v10")) == 40.0,
    )
    check(
        "the whole graph (value 203) is excluded by s=4",
        frozenset(range(11)) not in values,
    )

    print("\nExample 2 (avg, k = 2, top-3 non-overlapping):")
    tonic = top_r_communities(
        graph, k=2, r=3, f="avg", method="bruteforce", non_overlapping=True
    )
    expected = [
        paper_vertex_set("v1 v2 v4"),
        paper_vertex_set("v6 v7 v11"),
        paper_vertex_set("v3 v9 v10"),
    ]
    check("communities match the paper's three", [c.vertices for c in tonic] == expected)
    check("pairwise disjoint", tonic.is_pairwise_disjoint())
    check(
        "values are 24, 67/3, 38/3",
        [round(v, 6) for v in tonic.values()]
        == [24.0, round(67 / 3, 6), round(38 / 3, 6)],
    )

    print("\nHeuristic parity: the paper's local search (BFS order, s=4)")
    heuristic = top_r_communities(
        graph, k=2, r=3, f="avg", s=4, non_overlapping=True, greedy=False
    )
    check(
        "local search finds the same three communities",
        [c.vertices for c in heuristic] == expected,
    )


if __name__ == "__main__":
    main()
