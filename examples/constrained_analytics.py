"""Label-constrained queries and the analytics surface, over the v1 API.

The constrained-search story in one self-contained script:

1. build a collaboration network with three labeled project teams
   (``team:graphs`` / ``team:systems`` / ``team:ml``) embedded in a
   random background, snapshot it, and serve the *restored* snapshot
   over HTTP;
2. ``POST /v1/query`` with a ``constraints.labels`` predicate — search
   prunes to matching vertices *before* expansion, and the response
   echoes the normalized envelope, ready to resubmit verbatim;
3. ask the analytics endpoints who leads each team
   (``/v1/analytics/leaders``) and how far its influence reaches
   (``/v1/analytics/reach``) — answered from the warm query cache;
4. show the structured error envelope and the ``Deprecation`` header
   legacy flat-shape routes now carry.

Run:  python examples/constrained_analytics.py
"""

from __future__ import annotations

import http.client
import json
import tempfile

from repro.graphs.builder import graph_from_edges
from repro.graphs.generators.random_graphs import gnm_random_graph
from repro.serving import (
    QueryService,
    load_service,
    run_server_in_thread,
    save_snapshot,
)
from repro.utils.rng import make_rng

TEAMS = ("team:graphs", "team:systems", "team:ml")
TEAM_SIZE = 12


def collaboration_graph(n: int = 300, m: int = 1200, seed: int = 11):
    """A G(n, m) background with three dense labeled team blocks.

    Members of different teams only ever collaborate through shared
    ``staff`` — so under a ``team:`` constraint the teams are three
    separate communities, not one merged block.
    """
    rng = make_rng(seed)
    labels = ["staff"] * n
    for t, team in enumerate(TEAMS):
        for v in range(t * TEAM_SIZE, (t + 1) * TEAM_SIZE):
            labels[v] = team
    edges = {
        (u, v)
        for u, v in gnm_random_graph(n, m, seed=seed).edges()
        if labels[u] == "staff" or labels[v] == "staff"
        or labels[u] == labels[v]
    }
    for t in range(len(TEAMS)):
        block = range(t * TEAM_SIZE, (t + 1) * TEAM_SIZE)
        for i in block:
            for j in block:
                if i < j and rng.random() < 0.7:
                    edges.add((i, j))
    graph = graph_from_edges(sorted(edges), n=n)
    weights = rng.uniform(0.0, 10.0, n)
    weights[: len(TEAMS) * TEAM_SIZE] += 10.0  # teams out-weigh the floor
    return graph.with_weights(weights).with_labels(labels)


def call(base_url: str, method: str, path: str, payload=None):
    """Returns (status, headers, parsed JSON body)."""
    connection = http.client.HTTPConnection(
        base_url.removeprefix("http://"), timeout=120
    )
    try:
        body = None if payload is None else json.dumps(payload)
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), json.loads(
            response.read()
        )
    finally:
        connection.close()


def main() -> None:
    graph = collaboration_graph()

    with tempfile.TemporaryDirectory() as tmp:
        print("[0] snapshot the labeled graph, then serve the restored copy:")
        snapshot = f"{tmp}/collab-snapshot"
        save_snapshot(QueryService(graph), snapshot)
        service = load_service(snapshot)  # labels survive the round-trip
        print(f"    {graph} restored from {snapshot.split('/')[-1]}")

        with run_server_in_thread(service) as base_url:
            print(f"    serving at {base_url}\n")

            print("[1] POST /v1/query — top teams under sum, members only:")
            envelope = {
                "k": 4,
                "r": 3,
                "f": "sum",
                "non_overlapping": True,
                "constraints": {"labels": {"prefix": "team:"}},
                "options": {"method": "improved"},
            }
            __, ___, answer = call(base_url, "POST", "/v1/query", envelope)
            print(f"    api_version={answer['api_version']} "
                  f"count={answer['count']}")
            print(f"    values={[round(v, 2) for v in answer['values']]}")
            print(f"    normalized echo: {json.dumps(answer['query'])}")

            print("\n[2] the echo resubmits verbatim (idempotent cache hit):")
            __, ___, again = call(
                base_url, "POST", "/v1/query", answer["query"]
            )
            print(f"    identical: {again == answer}")

            print("\n[3] POST /v1/analytics/leaders — who anchors each team:")
            __, ___, leaders = call(
                base_url, "POST", "/v1/analytics/leaders",
                {"query": envelope, "deputies": 2},
            )
            names = graph.labels
            for entry in leaders["leaders"]:
                lead = entry["leader"]
                deputy_ids = [d["vertex"] for d in entry["deputies"]]
                print(f"    #{entry['rank']} {names[lead['vertex']]:<13} "
                      f"size={entry['size']} leader=v{lead['vertex']} "
                      f"(w={lead['weight']:.2f}) deputies={deputy_ids}")

            print("\n[4] POST /v1/analytics/reach — influence horizon:")
            __, ___, reach = call(
                base_url, "POST", "/v1/analytics/reach",
                {"query": envelope, "hops": 2},
            )
            for entry in reach["reach"]:
                print(f"    #{entry['rank']} reach% by hop: "
                      f"{entry['reach_pct']}")

            print("\n[5] errors are structured — a misplaced tuning knob:")
            status, ___, error = call(
                base_url, "POST", "/v1/query",
                {"k": 4, "r": 3, "method": "naive"},
            )
            print(f"    HTTP {status}: code={error['error']['code']}")
            print(f"    detail: {error['error']['detail']}")

            print("\n[6] legacy flat routes still answer, flagged deprecated:")
            legacy_body = {
                "k": 4,
                "r": 3,
                "f": "sum",
                "non_overlapping": True,
                "constraints": {"labels": {"prefix": "team:"}},
                "method": "improved",  # flat spelling: fine on legacy
            }
            status, headers, legacy = call(
                base_url, "POST", "/query", legacy_body
            )
            print(f"    HTTP {status} "
                  f"Deprecation={headers.get('Deprecation')} "
                  f"successor={headers.get('Link')}")
            print(f"    values match v1: "
                  f"{legacy['values'] == answer['values']}")


if __name__ == "__main__":
    main()
