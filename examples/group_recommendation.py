"""Application 2 — Group recommendation on a social network.

The paper's second scenario: a user searches for interest groups; each
member's influence value measures topical affinity, and the recommended
groups are the top-r communities by *average* affinity (a tight group of
very interested people beats a huge lukewarm one), non-overlapping so the
user sees distinct options.

This script weights a SNAP-like social graph stand-in by PageRank-scaled
topical affinity and compares the recommendations under avg (the paper's
choice here), sum, and min.

Run:  python examples/group_recommendation.py
"""

from __future__ import annotations

import numpy as np

from repro import snap_like_graph, top_r_communities
from repro.utils.rng import make_rng

K = 4          # recommended groups must be 4-cohesive
R = 3          # show three options
MAX_SIZE = 10  # digestible group size


def main() -> None:
    graph = snap_like_graph("email")
    # Topical affinity: PageRank (structural influence) modulated by a
    # random per-user interest level in the queried topic.
    rng = make_rng(77)
    interest = rng.uniform(0.0, 1.0, size=graph.n) ** 2  # most users lukewarm
    affinity = graph.weights * 1e4 * (0.2 + interest)
    social = graph.with_weights(np.round(affinity, 4))

    print(
        f"network: {social.n} users, {social.m} ties; recommending "
        f"top-{R} non-overlapping {K}-cohesive groups of <= {MAX_SIZE}"
    )

    for f, story in [
        ("avg", "highest average affinity (the paper's pick for this task)"),
        ("sum", "largest total affinity (favours bigger groups)"),
        ("min", "no lukewarm member (floor on affinity)"),
    ]:
        result = top_r_communities(
            social, k=K, r=R, f=f, s=MAX_SIZE,
            non_overlapping=True, greedy=False,
        )
        print(f"\nrecommendations by {f} — {story}:")
        if not len(result):
            print("  (none found)")
        for rank, community in enumerate(result, start=1):
            members = ", ".join(str(v) for v in community.members()[:8])
            suffix = "..." if community.size > 8 else ""
            print(
                f"  #{rank}: {community.size} users, {f}={community.value:.2f} "
                f"-> users [{members}{suffix}]"
            )
        print(f"  disjoint: {result.is_pairwise_disjoint()}")


if __name__ == "__main__":
    main()
