"""Application 3 / Section VI.C — influential research group identification.

Reproduces the paper's Figure 14 case study on the synthetic Aminer-style
co-authorship network: top-3 non-overlapping 4-influential communities
under min / avg / sum, each paired with the citation index the paper
recommends for it (i10 for min, G-index for avg, raw citations for sum),
printed with researcher names.

Run:  python examples/research_groups.py
"""

from __future__ import annotations

from collections import Counter

from repro.bench.case_study import render_case_study, run_case_study
from repro.graphs.generators.aminer import generate_aminer


def main() -> None:
    graph, metadata = generate_aminer()
    fields = Counter(metadata.field_of)
    print(
        f"synthetic Aminer: {graph.n} researchers, {graph.m} co-authorships, "
        f"{len(metadata.senior_groups)} senior groups"
    )
    print("fields: " + ", ".join(f"{f} ({c})" for f, c in sorted(fields.items())))
    print()
    panels = run_case_study()
    print(render_case_study(panels))

    print("\nwhat the aggregators disagree about:")
    families = {
        p.aggregator: [frozenset(c.vertices) for c in p.communities]
        for p in panels
    }
    min_only = set(families["min"]) - set(families["avg"]) - set(families["sum"])
    avg_sizes = [c.size for c in dict(
        (p.aggregator, p) for p in panels
    )["avg"].communities]
    sum_sizes = [c.size for c in dict(
        (p.aggregator, p) for p in panels
    )["sum"].communities]
    print(f"  groups unique to min: {len(min_only)}")
    print(f"  avg community sizes: {avg_sizes} (elite, small)")
    print(f"  sum community sizes: {sum_sizes} (diverse, larger)")


if __name__ == "__main__":
    main()
