"""Extension tour: the min-community index and the k-truss model.

Two capabilities beyond the paper's core algorithms:

1. :class:`~repro.influential.min_index.MinCommunityIndex` — prior work
   (Li et al. 2015, Bi et al. 2018) answers repeated min queries from an
   index; we build the laminar community forest once and answer top-r,
   non-contained, non-overlapping, and "which community is researcher X
   in?" queries instantly.
2. k-truss influential communities — the stricter cohesiveness model the
   paper's introduction points to: every edge must close k-2 triangles.

Run:  python examples/indexed_queries.py
"""

from __future__ import annotations

import time

from repro import snap_like_graph
from repro.influential.min_index import MinCommunityIndex
from repro.influential.minmax_solvers import top_r_min
from repro.influential.truss_search import truss_top_r_min, truss_top_r_sum


def main() -> None:
    graph = snap_like_graph("dblp")
    k = 4
    print(f"dataset: dblp stand-in ({graph.n} vertices, {graph.m} edges), k={k}")

    # ------------------------------------------------------------------
    print("\n-- 1. the laminar min-community index --")
    t0 = time.perf_counter()
    index = MinCommunityIndex(graph, k)
    build = time.perf_counter() - t0
    print(f"built index over {len(index)} communities in {build:.3f}s")

    t0 = time.perf_counter()
    for __ in range(100):
        index.top_r(5)
    per_query = (time.perf_counter() - t0) / 100
    print(f"top-5 from the index: {per_query * 1e6:.1f}us per query")

    t0 = time.perf_counter()
    direct = top_r_min(graph, k, 5)
    print(f"top-5 by re-peeling:  {time.perf_counter() - t0:.3f}s per query")
    assert index.top_r(5).values() == direct.values()

    anchor = index.top_r(1)[0].members()[0]
    chain = index.chain_of(anchor)
    print(
        f"vertex {anchor} sits in a chain of {len(chain)} nested communities "
        f"(innermost value {chain[0].value:.6f}, outermost {chain[-1].value:.6f})"
    )
    disjoint = index.top_r_nonoverlapping(3)
    print(f"non-overlapping top-3 values: {[round(v, 6) for v in disjoint.values()]}")

    # ------------------------------------------------------------------
    print("\n-- 2. the k-truss model --")
    core_style = top_r_min(graph, k, 1)
    truss_style = truss_top_r_min(graph, k + 1, 1)
    print(
        f"top min-community, {k}-core model:  size "
        f"{core_style[0].size if len(core_style) else '-'}"
    )
    if len(truss_style):
        print(
            f"top min-community, {k + 1}-truss model: size "
            f"{truss_style[0].size} (triangle-reinforced, tighter)"
        )
    top_sum = truss_top_r_sum(graph, k + 1, 3)
    print(
        f"top-3 {k + 1}-truss communities by sum: "
        f"{[round(v, 6) for v in top_sum.values()]}"
    )


if __name__ == "__main__":
    main()
