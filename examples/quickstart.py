"""Quickstart: the library in five minutes, on the paper's running example.

Builds the 11-vertex Figure 1 graph, runs the top-r search under several
aggregation functions, and shows the size-constrained and non-overlapping
variants — every mode of the public API on one small graph.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import figure1_graph, top_r_communities


def main() -> None:
    graph = figure1_graph()
    print(f"graph: {graph.n} vertices, {graph.m} edges, "
          f"total weight {graph.total_weight}")

    # --- 1. top-2 under sum (exact, Algorithm 2) --------------------------
    print("\n[1] top-2 communities under sum, k=2:")
    result = top_r_communities(graph, k=2, r=2, f="sum")
    print(result.describe(graph))

    # --- 2. the same query under min and avg ------------------------------
    print("\n[2] top-2 under min (prior work's model):")
    print(top_r_communities(graph, k=2, r=2, f="min").describe(graph))

    print("\n[3] top-2 under avg (NP-hard; local-search heuristic):")
    print(
        top_r_communities(graph, k=2, r=2, f="avg", greedy=False).describe(graph)
    )

    # --- 3. size-constrained search (Definition 4) ------------------------
    print("\n[4] top-3 under sum with size constraint s=4:")
    result = top_r_communities(graph, k=2, r=3, f="sum", s=4)
    print(result.describe(graph))

    # --- 4. non-overlapping (TONIC, Definition 5) --------------------------
    print("\n[5] top-3 non-overlapping under avg with s=4 (paper Example 2):")
    result = top_r_communities(
        graph, k=2, r=3, f="avg", s=4, non_overlapping=True, greedy=False
    )
    print(result.describe(graph))
    print(f"    disjoint: {result.is_pairwise_disjoint()}")

    # --- 5. choosing algorithms explicitly --------------------------------
    print("\n[6] same sum query through each algorithm:")
    for method in ("naive", "improved", "approx", "exact", "bruteforce"):
        values = top_r_communities(
            graph, k=2, r=2, f="sum", method=method, eps=0.1
        ).values()
        print(f"    {method:10s} -> {values}")


if __name__ == "__main__":
    main()
